//! Streams projections into per-core synaptic matrices — the
//! "connectivity data constructed" step of §5.3, producing the SDRAM
//! images the DMA engine fetches at run time.
//!
//! The build is a **streaming pipeline**: each projection is expanded
//! through [`Projection::iter`](crate::graph::Projection::iter) one
//! pair at a time and scattered straight into the destination cores'
//! [`SynapticMatrixBuilder`]s; no global edge list is ever
//! materialized, and the finished per-core state is one contiguous
//! master-population-table + arena
//! ([`spinn_neuron::synmatrix::SynapticMatrix`]) per core — the §5.2/§6
//! memory model.
//!
//! Two levers make a full SpiNNaker-scale build (2^16 chips, 10^8+
//! synapses) fit host RAM and wall-clock ([`BuildOptions`]):
//!
//! * **Lazy arenas** — populations whose incoming projections all use
//!   replayable connectors (`OneToOne`, `AllToAll`,
//!   `FixedProbability`) store generator recipes + per-source RNG
//!   positions instead of expanded words; rows materialize bit-exactly
//!   on first DMA touch. Deterministic connectors with constant
//!   synapses skip the expansion stream entirely (row lengths are
//!   analytic), so build time drops from `O(synapses)` to `O(rows)`.
//! * **Parallel expansion** — projections are independent until their
//!   words meet a destination core's builder, so worker threads expand
//!   them concurrently and the results merge *in projection order*,
//!   which reproduces the serial build's push order bit-for-bit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use spinn_neuron::gen::{GenConnector, GenSpec, GenState};
use spinn_neuron::izhikevich::IzhikevichNeuron;
use spinn_neuron::lif::LifNeuron;
use spinn_neuron::model::AnyNeuron;
use spinn_neuron::synapse::SynapticWord;
use spinn_neuron::synmatrix::{SynapticMatrix, SynapticMatrixBuilder};
use spinn_noc::mesh::NodeCoord;
use spinn_sim::Xoshiro256;

use crate::graph::{Connector, NetworkGraph, NeuronKind, Projection};
use crate::keys::{core_base_key, neuron_key, CORE_MASK};
use crate::place::{Placement, Slice};

/// When the loader may store generator recipes instead of expanded
/// synaptic words (laziness is decided per *destination population*: a
/// core's matrix is entirely lazy or entirely eager, never mixed).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum LazyMode {
    /// Always expand eagerly.
    Off,
    /// Go lazy where every incoming projection is replayable **and**
    /// the recipe (per-source RNG states for stochastic connectors) is
    /// estimated to cost less host memory than the expanded words.
    /// Analytic connectivity (deterministic connector + constant
    /// synapses) always qualifies — its recipe is a handful of bytes.
    #[default]
    Auto,
    /// Go lazy wherever replay is possible, even when the recipe is
    /// bigger than the words (used by conformance tests to force the
    /// stateful replay paths).
    Force,
}

/// Knobs of the loader build.
#[derive(Copy, Clone, Debug, Default)]
pub struct BuildOptions {
    /// Worker threads expanding projections concurrently (results are
    /// identical at every thread count; 0 and 1 both mean inline).
    pub threads: usize,
    /// Compressed lazily-materialized arena policy.
    pub lazy: LazyMode,
}

/// Everything one application core needs loading.
#[derive(Clone, Debug)]
pub struct CoreImage {
    /// Chip holding the core.
    pub chip: NodeCoord,
    /// Core index (1-based).
    pub core: u8,
    /// AER base key of the core's neurons.
    pub base_key: u32,
    /// The neuron state vector.
    pub neurons: Vec<AnyNeuron>,
    /// Bias currents, nA.
    pub bias_na: Vec<f32>,
    /// The core's synaptic state: master population table + contiguous
    /// row arena, indexed by source-neuron AER key.
    pub matrix: SynapticMatrix,
}

impl CoreImage {
    /// SDRAM footprint of this core's synaptic data, bytes.
    pub fn sdram_bytes(&self) -> u64 {
        self.matrix.sdram_bytes()
    }

    /// Total synapse count.
    pub fn synapses(&self) -> u64 {
        self.matrix.total_synapses()
    }
}

/// The fully expanded application: one image per placed core.
#[derive(Clone, Debug)]
pub struct LoadedApp {
    /// Per-core images.
    pub images: Vec<CoreImage>,
}

impl LoadedApp {
    /// Expands a placed network into core images by streaming each
    /// projection directly into the destination cores' matrices
    /// ([`LoadedApp::build_with`] with default options: inline, lazy
    /// arenas where the connectivity supports them).
    pub fn build(net: &NetworkGraph, placement: &Placement) -> LoadedApp {
        Self::build_with(net, placement, BuildOptions::default())
    }

    /// [`LoadedApp::build`] with explicit [`BuildOptions`]. The result
    /// is bit-identical across thread counts and — once rows are
    /// materialized — across the lazy/eager choice.
    pub fn build_with(net: &NetworkGraph, placement: &Placement, opts: BuildOptions) -> LoadedApp {
        // One matrix builder per slice; images and slices share indices
        // (image `i` is slice `i`).
        let slices = placement.slices();
        let mut builders: Vec<SynapticMatrixBuilder> = (0..slices.len())
            .map(|_| SynapticMatrixBuilder::new())
            .collect();

        // A population's cores go lazy only when *every* projection
        // feeding it is replayable — a core's builder is entirely lazy
        // or entirely eager, never mixed. Under `Auto`, additionally
        // require the recipes to be estimated cheaper than the words:
        // stochastic connectors pay one RNG state per (source, dst
        // slice), which loses to eager words on sparse fan-in.
        let n_pops = net.populations().len();
        let mut lazy_pop = vec![opts.lazy != LazyMode::Off; n_pops];
        let mut state_est = vec![0u64; n_pops];
        let mut word_est = vec![0u64; n_pops];
        for proj in net.projections() {
            let d = proj.dst.index();
            let Some(conn) = gen_connector(proj) else {
                lazy_pop[d] = false;
                continue;
            };
            let n_src = net.pop(proj.src).size as u64;
            let n_dst = net.pop(proj.dst).size as u64;
            let dst_slices = placement.slice_indices_of(proj.dst).len() as u64;
            let needs_state = match conn {
                GenConnector::Bernoulli { .. } => true,
                _ => !proj.synapses.gen().is_constant(),
            };
            if needs_state {
                state_est[d] += n_src * dst_slices * std::mem::size_of::<GenState>() as u64;
            }
            word_est[d] += 4 * match conn {
                GenConnector::OneToOne => n_src.min(n_dst),
                GenConnector::AllToAll { .. } => n_src * n_dst,
                GenConnector::Bernoulli { p } => (p * (n_src * n_dst) as f64) as u64,
            };
        }
        if opts.lazy == LazyMode::Auto {
            for d in 0..n_pops {
                lazy_pop[d] = lazy_pop[d] && state_est[d] < word_est[d];
            }
        }

        // Phase 1 (serial): declare every projection's key blocks.
        // The multicast tree delivers every source-core spike to
        // every core holding target neurons, whether or not that
        // particular neuron connects there — as on hardware, each
        // destination core's master population table covers the
        // *whole* source key block (missing synapses are empty
        // rows, not misses). Declare those blocks up front and
        // remember each (src slice, dst slice) block's first row.
        let plans: Vec<ProjPlan> = net
            .projections()
            .iter()
            .map(|proj| {
                let src_idxs = placement.slice_indices_of(proj.src);
                let dst_idxs = placement.slice_indices_of(proj.dst);
                let mut first_rows = vec![vec![0u32; dst_idxs.len()]; src_idxs.len()];
                for (sp, &si) in src_idxs.iter().enumerate() {
                    let src = &slices[si];
                    for (dp, &di) in dst_idxs.iter().enumerate() {
                        first_rows[sp][dp] = builders[di].block(
                            core_base_key(src.global_core),
                            CORE_MASK,
                            src.len(),
                        );
                    }
                }
                ProjPlan {
                    first_rows,
                    src_idxs: src_idxs.to_vec(),
                    dst_idxs: dst_idxs.to_vec(),
                    lazy: lazy_pop[proj.dst.index()] && gen_connector(proj).is_some(),
                }
            })
            .collect();

        // Phase 2 (parallel): expand projections into staged outputs.
        // Projections are independent until their words reach a
        // destination builder, so this is a plain work queue.
        let n_proj = plans.len();
        let workers = opts.threads.clamp(1, n_proj.max(1));
        let slots: Vec<OnceLock<ProjOutput>> = (0..n_proj).map(|_| OnceLock::new()).collect();
        let expand = |i: usize| expand_projection(net, &net.projections()[i], slices, &plans[i]);
        if workers <= 1 {
            for (i, slot) in slots.iter().enumerate() {
                let _ = slot.set(expand(i));
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_proj {
                            break;
                        }
                        let _ = slots[i].set(expand(i));
                    });
                }
            });
        }

        // Phase 3 (serial, projection order): merge staged outputs into
        // the builders. Replaying in projection order reproduces the
        // serial build's per-row push order exactly.
        for (i, slot) in slots.into_iter().enumerate() {
            let out = slot.into_inner().expect("projection expanded");
            let proj = &net.projections()[i];
            let plan = &plans[i];
            match out {
                ProjOutput::Eager(pushes) => {
                    for (di, row, word) in pushes {
                        builders[di as usize].push(row, word);
                    }
                }
                ProjOutput::Lazy { states, lens } => {
                    let conn = gen_connector(proj).expect("lazy plan implies replayable");
                    let n_src = net.pop(proj.src).size;
                    let n_dst = net.pop(proj.dst).size;
                    for (sp, &si) in plan.src_idxs.iter().enumerate() {
                        let src = &slices[si];
                        for (dp, &di) in plan.dst_idxs.iter().enumerate() {
                            let dst = &slices[di];
                            let spec = GenSpec {
                                conn,
                                syn: proj.synapses.gen(),
                                n_src,
                                n_dst,
                                dst_lo: dst.lo,
                                dst_hi: dst.hi,
                            };
                            let first_row = plan.first_rows[sp][dp];
                            let needs = spec.needs_state();
                            let lens_dp = lens.as_ref().map(|l| &l[dp]);
                            let c = builders[di].lazy_contribution(
                                first_row,
                                src.len(),
                                src.lo,
                                spec.clone(),
                            );
                            for i in 0..src.len() {
                                let s = src.lo + i;
                                if needs {
                                    builders[di].lazy_state(c, states[s as usize]);
                                }
                                let len = match lens_dp {
                                    Some(l) => l[s as usize],
                                    None => spec.row_len(s).expect("analytic lens"),
                                };
                                builders[di].lazy_len(first_row + i, len);
                            }
                        }
                    }
                }
            }
        }

        // Phase 4 (parallel): pack the arenas and build the images.
        let images = if workers <= 1 || slices.len() < 2 {
            slices
                .iter()
                .zip(builders)
                .map(|(s, b)| build_image(net, s, b))
                .collect()
        } else {
            let chunk = slices.len().div_ceil(workers);
            let mut chunks: Vec<Vec<SynapticMatrixBuilder>> = Vec::new();
            let mut rest = builders;
            while rest.len() > chunk {
                let tail = rest.split_off(chunk);
                chunks.push(rest);
                rest = tail;
            }
            chunks.push(rest);
            let mut images: Vec<CoreImage> = Vec::with_capacity(slices.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .enumerate()
                    .map(|(ci, bs)| {
                        scope.spawn(move || {
                            bs.into_iter()
                                .enumerate()
                                .map(|(j, b)| build_image(net, &slices[ci * chunk + j], b))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    images.extend(h.join().expect("image worker"));
                }
            });
            images
        };
        LoadedApp { images }
    }

    /// Total SDRAM across the machine, bytes.
    pub fn total_sdram_bytes(&self) -> u64 {
        self.images.iter().map(|i| i.sdram_bytes()).sum()
    }

    /// Total synapse count.
    pub fn total_synapses(&self) -> u64 {
        self.images.iter().map(|i| i.synapses()).sum()
    }
}

/// Per-projection build geometry captured during the serial block
/// declaration (phase 1): block first rows plus the projection's source
/// and destination slice index lists.
struct ProjPlan {
    /// `first_rows[sp][dp]`: first row of the (src slice, dst slice)
    /// block in the destination core's builder.
    first_rows: Vec<Vec<u32>>,
    src_idxs: Vec<usize>,
    dst_idxs: Vec<usize>,
    /// Whether this projection merges as a lazy recipe (replayable
    /// connector *and* every projection into the same destination
    /// population is replayable too).
    lazy: bool,
}

/// What one projection's (possibly parallel) expansion stages for the
/// serial merge.
enum ProjOutput {
    /// Fully expanded words: `(dst slice index, row, word)` in the exact
    /// order the serial streaming build would have pushed them.
    Eager(Vec<(u32, u32, SynapticWord)>),
    /// Lazy recipe inputs: per-source RNG stream positions (empty when
    /// the spec is analytic) and, for Bernoulli, the counted row lengths
    /// per `[dst slice][source]` (`None` when lengths are analytic).
    Lazy {
        states: Vec<GenState>,
        lens: Option<Vec<Vec<u32>>>,
    },
}

/// Maps a graph connector to its replayable generator form (`None` for
/// `FixedFanOut`, whose cumulative target shuffle has no cheap per-row
/// state). Mirrors the special cases of `Projection::iter`: a recurrent
/// `AllToAll` skips the diagonal only when source and target coincide,
/// and degenerate probabilities collapse to dense/empty.
fn gen_connector(proj: &Projection) -> Option<GenConnector> {
    match proj.connector {
        Connector::OneToOne => Some(GenConnector::OneToOne),
        Connector::AllToAll { allow_self } => Some(GenConnector::AllToAll {
            skip_self: !allow_self && proj.src == proj.dst,
        }),
        Connector::FixedProbability(p) if p >= 1.0 => {
            Some(GenConnector::AllToAll { skip_self: false })
        }
        Connector::FixedProbability(p) => Some(GenConnector::Bernoulli { p }),
        Connector::FixedFanOut(_) => None,
    }
}

/// Expands one projection into its staged [`ProjOutput`] — the
/// thread-safe part of the build (reads the graph and placement, writes
/// nothing shared).
fn expand_projection(
    net: &NetworkGraph,
    proj: &Projection,
    slices: &[Slice],
    plan: &ProjPlan,
) -> ProjOutput {
    let n_src = net.pop(proj.src).size;
    let n_dst = net.pop(proj.dst).size;
    if !plan.lazy {
        // Eager: the original streaming expansion, staged instead of
        // pushed (pairs ascend by source; the source slice advances
        // monotonically, the destination slice is binary-searched).
        let mut pushes = Vec::new();
        let mut rng = Xoshiro256::seed_from_u64(proj.seed ^ 0x005E_ED0F_5EED);
        let mut sp = 0usize;
        for (s, d) in proj.iter(n_src, n_dst) {
            let (w, delay) = proj.synapses.sample(&mut rng);
            while slices[plan.src_idxs[sp]].hi <= s {
                sp += 1;
            }
            let src_slice = &slices[plan.src_idxs[sp]];
            debug_assert!(src_slice.lo <= s && s < src_slice.hi);
            let dp = plan.dst_idxs.partition_point(|&i| slices[i].hi <= d);
            let di = plan.dst_idxs[dp];
            let dst_slice = &slices[di];
            let local_target = (d - dst_slice.lo) as u16;
            let row = plan.first_rows[sp][dp] + (s - src_slice.lo);
            pushes.push((di as u32, row, SynapticWord::new(w, delay, local_target)));
        }
        return ProjOutput::Eager(pushes);
    }

    let conn = gen_connector(proj).expect("lazy plan implies a replayable connector");
    let syn = proj.synapses.gen();
    match conn {
        GenConnector::Bernoulli { p } => {
            // One counting pass over the success stream. For every
            // source we capture the RNG/cursor position *pending* just
            // before the draw that yields its first success — replaying
            // from there reproduces exactly that source's run (earlier
            // sources' successes are already behind the cursor).
            let mut lens = vec![vec![0u32; n_src as usize]; plan.dst_idxs.len()];
            let mut conn_rng = Xoshiro256::seed_from_u64(proj.seed ^ 0x50C1_A11E);
            let mut syn_rng = Xoshiro256::seed_from_u64(proj.seed ^ 0x005E_ED0F_5EED);
            let total = if p > 0.0 {
                n_src as u64 * n_dst as u64
            } else {
                0
            };
            let mut states: Vec<GenState> = Vec::with_capacity(n_src as usize);
            let mut cursor = 0u64;
            loop {
                let pending = GenState {
                    syn_rng: syn_rng.state(),
                    conn_rng: conn_rng.state(),
                    cursor,
                };
                if cursor >= total {
                    // Sources past the last success replay to empty
                    // rows immediately.
                    let fin = GenState {
                        cursor: total,
                        ..pending
                    };
                    states.resize(n_src as usize, fin);
                    break;
                }
                let u = conn_rng.next_f64();
                let skip = ((1.0 - u).ln() / (-p).ln_1p()).floor() as u64;
                let idx = cursor.saturating_add(skip);
                if idx >= total {
                    let fin = GenState {
                        syn_rng: syn_rng.state(),
                        conn_rng: conn_rng.state(),
                        cursor: total,
                    };
                    states.resize(n_src as usize, fin);
                    break;
                }
                cursor = idx + 1;
                let s = (idx / n_dst as u64) as usize;
                let d = (idx % n_dst as u64) as u32;
                // This is the first success of every source in
                // (last assigned, s]; all of them replay from `pending`
                // (the intermediates stop at their row end and stay
                // empty).
                while states.len() <= s {
                    states.push(pending);
                }
                let _ = syn.sample(&mut syn_rng);
                let dp = plan.dst_idxs.partition_point(|&i| slices[i].hi <= d);
                lens[dp][s] += 1;
            }
            ProjOutput::Lazy {
                states,
                lens: Some(lens),
            }
        }
        // Deterministic connector + constant synapses: fully analytic,
        // no stream at all — this is what makes a 10^9-synapse build
        // `O(rows)` instead of `O(synapses)`.
        GenConnector::OneToOne | GenConnector::AllToAll { .. } if syn.is_constant() => {
            ProjOutput::Lazy {
                states: Vec::new(),
                lens: None,
            }
        }
        GenConnector::OneToOne => {
            // One weight/delay draw per connected pair, ascending
            // source: the state for source `s` is the synapse RNG after
            // `min(s, n)` draws.
            let mut syn_rng = Xoshiro256::seed_from_u64(proj.seed ^ 0x005E_ED0F_5EED);
            let conn_zero = Xoshiro256::seed_from_u64(proj.seed ^ 0x50C1_A11E).state();
            let n = n_src.min(n_dst);
            let mut states = Vec::with_capacity(n_src as usize);
            for s in 0..n_src {
                states.push(GenState {
                    syn_rng: syn_rng.state(),
                    conn_rng: conn_zero,
                    cursor: 0,
                });
                if s < n {
                    let _ = syn.sample(&mut syn_rng);
                }
            }
            ProjOutput::Lazy { states, lens: None }
        }
        GenConnector::AllToAll { skip_self } => {
            // Dense scan, one draw per (kept) pair; only the per-source
            // RNG positions are retained.
            let mut syn_rng = Xoshiro256::seed_from_u64(proj.seed ^ 0x005E_ED0F_5EED);
            let conn_zero = Xoshiro256::seed_from_u64(proj.seed ^ 0x50C1_A11E).state();
            let mut states = Vec::with_capacity(n_src as usize);
            for s in 0..n_src {
                states.push(GenState {
                    syn_rng: syn_rng.state(),
                    conn_rng: conn_zero,
                    cursor: 0,
                });
                for d in 0..n_dst {
                    if skip_self && d == s {
                        continue;
                    }
                    let _ = syn.sample(&mut syn_rng);
                }
            }
            ProjOutput::Lazy { states, lens: None }
        }
    }
}

/// Packs one core's builder into its image (phase 4; independent per
/// core, so parallelizable).
fn build_image(net: &NetworkGraph, s: &Slice, builder: SynapticMatrixBuilder) -> CoreImage {
    let n = s.len() as usize;
    let pop = net.pop(s.pop);
    let neurons = (0..n)
        .map(|_| match pop.kind {
            NeuronKind::Izhikevich(p) => AnyNeuron::Izhikevich(IzhikevichNeuron::new(p)),
            NeuronKind::Lif(p) => AnyNeuron::Lif(LifNeuron::new(p)),
        })
        .collect();
    CoreImage {
        chip: s.chip,
        core: s.core,
        base_key: neuron_key(s.global_core, 0),
        neurons,
        bias_na: vec![pop.bias_na; n],
        matrix: builder.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Connector, NeuronKind, Synapses};
    use crate::place::Placer;
    use spinn_neuron::izhikevich::IzhikevichParams;

    fn kind() -> NeuronKind {
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
    }

    fn build_app(connector: Connector, sizes: (u32, u32)) -> (NetworkGraph, Placement, LoadedApp) {
        let mut net = NetworkGraph::new();
        let a = net.population("a", sizes.0, kind(), 5.0);
        let b = net.population("b", sizes.1, kind(), 0.0);
        net.project(a, b, connector, Synapses::constant(300, 2), 11);
        let placement = Placement::compute(&net, 4, 4, 17, 50, Placer::RoundRobin).unwrap();
        let app = LoadedApp::build(&net, &placement);
        (net, placement, app)
    }

    #[test]
    fn images_cover_all_neurons() {
        let (net, _, app) = build_app(Connector::OneToOne, (120, 120));
        let total: usize = app.images.iter().map(|i| i.neurons.len()).sum();
        assert_eq!(total as u64, net.total_neurons());
        for img in &app.images {
            assert_eq!(img.neurons.len(), img.bias_na.len());
            assert!(img.core >= 1);
        }
    }

    #[test]
    fn one_to_one_synapse_count_and_targets() {
        let (_, placement, app) = build_app(Connector::OneToOne, (120, 120));
        assert_eq!(app.total_synapses(), 120);
        // Every non-empty row has exactly one synapse; empty rows exist
        // for source neurons whose targets live on other cores.
        for img in &app.images {
            for (key, row_idx) in img.matrix.iter_rows() {
                let row = img.matrix.row_words(row_idx);
                assert!(row.len() <= 1, "one-to-one row for key {key:#x}");
                if let Some(w) = row.first() {
                    assert_eq!(w.weight_raw(), 300);
                    assert_eq!(w.delay_ms(), 2);
                }
            }
        }
        // Every destination core holds a row (possibly empty) for every
        // source neuron: 3 dest cores x 120 sources.
        let rows: usize = app.images.iter().map(|i| i.matrix.n_rows()).sum();
        assert_eq!(rows, 3 * 120);
        let non_empty: usize = app
            .images
            .iter()
            .flat_map(|i| {
                let m = &i.matrix;
                m.iter_rows()
                    .map(move |(_, r)| m.row_len(r))
                    .collect::<Vec<_>>()
            })
            .filter(|&len| len > 0)
            .count();
        assert_eq!(non_empty, 120);
        let _ = placement;
    }

    #[test]
    fn all_to_all_row_shapes() {
        let (_, _, app) = build_app(Connector::AllToAll { allow_self: true }, (30, 40));
        assert_eq!(app.total_synapses(), 30 * 40);
        // Each source key's rows, summed over destination cores, must
        // cover all 40 targets: 40 targets over ceil(40/50)=1 core.
        let img_b = app.images.iter().find(|i| !i.matrix.is_empty()).unwrap();
        for (_, row) in img_b.matrix.iter_rows() {
            assert_eq!(img_b.matrix.row_len(row), 40);
        }
    }

    #[test]
    fn sdram_accounting() {
        let (_, _, app) = build_app(Connector::AllToAll { allow_self: true }, (30, 40));
        // 30 rows x (4 + 40*4) bytes (all rows non-empty: all-to-all).
        assert_eq!(app.total_sdram_bytes(), 30 * (4 + 160));
    }

    /// The loader's byte totals must equal the summed arena sizes —
    /// the invariant the machine's SDRAM capacity check builds on —
    /// whether or not the rows are materialized yet (simulated SDRAM is
    /// a property of the network, host residency of the build mode).
    #[test]
    fn loader_totals_equal_summed_arena_sizes() {
        let (_, _, app) = build_app(Connector::FixedProbability(0.2), (90, 110));
        let summed: u64 = app.images.iter().map(|i| i.matrix.sdram_bytes()).sum();
        assert_eq!(app.total_sdram_bytes(), summed);
        let by_rows: u64 = app
            .images
            .iter()
            .flat_map(|i| {
                let m = &i.matrix;
                m.iter_rows()
                    .map(move |(_, r)| m.row_bytes(r) as u64)
                    .collect::<Vec<_>>()
            })
            .sum();
        assert_eq!(summed, by_rows);
        // Sparse Bernoulli fan-in is exactly where per-source RNG
        // states lose to plain words, so `Auto` must have kept this
        // build eager (resident holds every expanded word)...
        let resident: u64 = app.images.iter().map(|i| i.matrix.resident_bytes()).sum();
        assert!(resident >= app.total_synapses() * 4);
        assert_eq!(
            app.images.iter().map(|i| i.matrix.lazy_rows()).sum::<u64>(),
            0
        );
        // ...while dense analytic connectivity goes lazy and undercuts
        // its eager twin by a wide margin.
        let (net, placement, lazy_app) =
            build_app(Connector::AllToAll { allow_self: true }, (90, 110));
        assert!(
            lazy_app
                .images
                .iter()
                .map(|i| i.matrix.lazy_rows())
                .sum::<u64>()
                > 0
        );
        let eager = LoadedApp::build_with(
            &net,
            &placement,
            BuildOptions {
                threads: 1,
                lazy: LazyMode::Off,
            },
        );
        let lazy_resident: u64 = lazy_app
            .images
            .iter()
            .map(|i| i.matrix.resident_bytes())
            .sum();
        let eager_resident: u64 = eager.images.iter().map(|i| i.matrix.resident_bytes()).sum();
        assert!(eager_resident >= eager.total_synapses() * 4);
        assert!(
            lazy_resident * 4 < eager_resident,
            "lazy {lazy_resident} must undercut eager {eager_resident}"
        );
    }

    #[test]
    fn deterministic_expansion() {
        let (_, _, a) = build_app(Connector::FixedProbability(0.3), (50, 50));
        let (_, _, b) = build_app(Connector::FixedProbability(0.3), (50, 50));
        assert_eq!(a.total_synapses(), b.total_synapses());
        for (x, y) in a.images.iter().zip(&b.images) {
            assert_eq!(x.matrix, y.matrix);
        }
    }

    #[test]
    fn keys_are_consistent_with_placement() {
        let (_, placement, app) = build_app(Connector::OneToOne, (120, 120));
        for img in &app.images {
            let slice = placement
                .slices()
                .iter()
                .find(|s| s.chip == img.chip && s.core == img.core)
                .unwrap();
            assert_eq!(img.base_key, crate::keys::neuron_key(slice.global_core, 0));
        }
    }

    /// Two projections between the same populations must merge into the
    /// same per-core rows (words appended in projection order).
    #[test]
    fn overlapping_projections_share_rows() {
        let mut net = NetworkGraph::new();
        let a = net.population("a", 10, kind(), 0.0);
        let b = net.population("b", 10, kind(), 0.0);
        net.project(a, b, Connector::OneToOne, Synapses::constant(100, 1), 1);
        net.project(a, b, Connector::OneToOne, Synapses::constant(-50, 2), 2);
        let placement = Placement::compute(&net, 2, 2, 17, 50, Placer::RoundRobin).unwrap();
        let app = LoadedApp::build(&net, &placement);
        assert_eq!(app.total_synapses(), 20);
        let img = &app.images[1];
        for (_, row_idx) in img.matrix.iter_rows() {
            let row = img.matrix.row_words(row_idx);
            assert_eq!(row.len(), 2);
            assert_eq!(row[0].weight_raw(), 100);
            assert_eq!(row[1].weight_raw(), -50);
        }
    }

    /// Row-by-row comparison that works across the lazy/eager divide
    /// (lazy rows are generated on the fly; `PartialEq` on the matrix
    /// itself would compare arenas and recipes instead of content).
    fn assert_same_content(a: &LoadedApp, b: &LoadedApp) {
        assert_eq!(a.images.len(), b.images.len());
        assert_eq!(a.total_synapses(), b.total_synapses());
        assert_eq!(a.total_sdram_bytes(), b.total_sdram_bytes());
        for (x, y) in a.images.iter().zip(&b.images) {
            assert_eq!(x.matrix.n_rows(), y.matrix.n_rows());
            let rows = x.matrix.iter_rows().collect::<Vec<_>>();
            assert_eq!(rows, y.matrix.iter_rows().collect::<Vec<_>>());
            for (_, r) in rows {
                assert_eq!(
                    x.matrix.row_words(r),
                    y.matrix.row_words(r),
                    "row {r} on core {}/{:?}",
                    x.core,
                    x.chip
                );
            }
        }
    }

    /// Every replayable connector (and both constant and uniform
    /// synapse distributions) must regenerate rows bit-identically to
    /// the fully expanded eager build; `FixedFanOut` must fall back to
    /// eager even when laziness is requested.
    #[test]
    fn lazy_build_matches_eager_for_every_connector() {
        let cases = [
            Connector::OneToOne,
            Connector::AllToAll { allow_self: true },
            Connector::FixedProbability(0.2),
            Connector::FixedProbability(1.5), // degenerate: dense
            Connector::FixedProbability(0.0), // degenerate: empty
            Connector::FixedFanOut(17),
        ];
        let syns = [
            Synapses::constant(300, 2),
            Synapses::uniform((-80, 120), (1, 9)),
        ];
        for connector in cases {
            for syn in syns {
                let mut net = NetworkGraph::new();
                let a = net.population("a", 110, kind(), 5.0);
                let b = net.population("b", 110, kind(), 0.0);
                net.project(a, b, connector, syn, 11);
                let placement = Placement::compute(&net, 4, 4, 17, 50, Placer::RoundRobin).unwrap();
                let lazy = LoadedApp::build_with(
                    &net,
                    &placement,
                    BuildOptions {
                        threads: 1,
                        lazy: LazyMode::Force,
                    },
                );
                let eager = LoadedApp::build_with(
                    &net,
                    &placement,
                    BuildOptions {
                        threads: 1,
                        lazy: LazyMode::Off,
                    },
                );
                for img in &eager.images {
                    assert_eq!(img.matrix.lazy_rows(), 0);
                }
                assert_same_content(&lazy, &eager);
                // And materialization must not change anything either.
                let mut materialized = lazy.clone();
                for img in &mut materialized.images {
                    img.matrix.materialize_all();
                    assert_eq!(img.matrix.lazy_rows(), 0);
                }
                assert_same_content(&materialized, &eager);
            }
        }
    }

    /// Thread counts must not change a single bit of the result — the
    /// merge replays staged outputs in projection order.
    #[test]
    fn parallel_build_is_bit_identical() {
        let mut net = NetworkGraph::new();
        let a = net.population("a", 90, kind(), 5.0);
        let b = net.population("b", 70, kind(), 0.0);
        let c = net.population("c", 90, kind(), 0.0);
        // `b` mixes a replayable and a non-replayable feed (stays
        // eager); `c` is purely replayable (goes lazy).
        net.project(
            a,
            b,
            Connector::FixedFanOut(9),
            Synapses::uniform((10, 90), (1, 4)),
            3,
        );
        net.project(
            a,
            b,
            Connector::FixedProbability(0.3),
            Synapses::constant(120, 2),
            4,
        );
        net.project(
            b,
            c,
            Connector::AllToAll { allow_self: false },
            Synapses::uniform((-40, 40), (2, 7)),
            5,
        );
        net.project(
            a,
            c,
            Connector::OneToOne,
            Synapses::uniform((1, 300), (1, 16)),
            6,
        );
        let placement = Placement::compute(&net, 4, 4, 17, 30, Placer::RoundRobin).unwrap();
        for lazy in [LazyMode::Off, LazyMode::Force] {
            let serial = LoadedApp::build_with(&net, &placement, BuildOptions { threads: 1, lazy });
            for threads in [2, 4, 16] {
                let par = LoadedApp::build_with(&net, &placement, BuildOptions { threads, lazy });
                for (x, y) in serial.images.iter().zip(&par.images) {
                    assert_eq!(x.matrix, y.matrix, "threads={threads} lazy={lazy:?}");
                }
            }
        }
        // The mixed destination really did stay eager and the pure one
        // really did go lazy (otherwise this test proves nothing).
        let app = LoadedApp::build_with(
            &net,
            &placement,
            BuildOptions {
                threads: 1,
                lazy: LazyMode::Force,
            },
        );
        let lazy_rows: u64 = app.images.iter().map(|i| i.matrix.lazy_rows()).sum();
        assert!(lazy_rows > 0, "population c should hold lazy rows");
        let b_imgs: Vec<_> = app
            .images
            .iter()
            .filter(|i| i.matrix.n_rows() > 0 && i.matrix.lazy_rows() == 0)
            .collect();
        assert!(!b_imgs.is_empty(), "population b should stay eager");
    }
}
