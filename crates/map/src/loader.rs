//! Expands projections into per-core synaptic rows — the "connectivity
//! data constructed" step of §5.3, producing the SDRAM images the DMA
//! engine fetches at run time.

use std::collections::HashMap;

use spinn_neuron::izhikevich::IzhikevichNeuron;
use spinn_neuron::lif::LifNeuron;
use spinn_neuron::model::AnyNeuron;
use spinn_neuron::synapse::{SynapticRow, SynapticWord};
use spinn_noc::mesh::NodeCoord;
use spinn_sim::Xoshiro256;

use crate::graph::{NetworkGraph, NeuronKind};
use crate::keys::neuron_key;
use crate::place::Placement;

/// Everything one application core needs loading.
#[derive(Clone, Debug)]
pub struct CoreImage {
    /// Chip holding the core.
    pub chip: NodeCoord,
    /// Core index (1-based).
    pub core: u8,
    /// AER base key of the core's neurons.
    pub base_key: u32,
    /// The neuron state vector.
    pub neurons: Vec<AnyNeuron>,
    /// Bias currents, nA.
    pub bias_na: Vec<f32>,
    /// Synaptic rows keyed by source-neuron AER key.
    pub rows: HashMap<u32, SynapticRow>,
}

impl CoreImage {
    /// SDRAM footprint of this core's synaptic data, bytes.
    pub fn sdram_bytes(&self) -> u64 {
        self.rows.values().map(|r| r.size_bytes() as u64).sum()
    }

    /// Total synapse count.
    pub fn synapses(&self) -> u64 {
        self.rows.values().map(|r| r.len() as u64).sum()
    }
}

/// The fully expanded application: one image per placed core.
#[derive(Clone, Debug)]
pub struct LoadedApp {
    /// Per-core images.
    pub images: Vec<CoreImage>,
}

impl LoadedApp {
    /// Expands a placed network into core images.
    pub fn build(net: &NetworkGraph, placement: &Placement) -> LoadedApp {
        // One image per slice.
        let mut images: Vec<CoreImage> = placement
            .slices()
            .iter()
            .map(|s| {
                let n = s.len() as usize;
                let pop = net.pop(s.pop);
                let neurons = (0..n)
                    .map(|_| match pop.kind {
                        NeuronKind::Izhikevich(p) => {
                            AnyNeuron::Izhikevich(IzhikevichNeuron::new(p))
                        }
                        NeuronKind::Lif(p) => AnyNeuron::Lif(LifNeuron::new(p)),
                    })
                    .collect();
                CoreImage {
                    chip: s.chip,
                    core: s.core,
                    base_key: neuron_key(s.global_core, 0),
                    neurons,
                    bias_na: vec![pop.bias_na; n],
                    rows: HashMap::new(),
                }
            })
            .collect();
        // Index from slice position to image.
        let slice_index: HashMap<(u32, u8, u32), usize> = placement
            .slices()
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.global_core, s.core, s.lo), i))
            .collect();
        let _ = &slice_index;

        for proj in net.projections() {
            let n_src = net.pop(proj.src).size;
            let n_dst = net.pop(proj.dst).size;
            // The multicast tree delivers every source-core spike to
            // every core holding target neurons, whether or not that
            // particular neuron connects there — as on hardware, those
            // cores hold an *empty* row for the key (the master
            // population table covers the whole key block).
            for dst_slice in placement.slices_of(proj.dst) {
                let img_idx = placement
                    .slices()
                    .iter()
                    .position(|sl| sl == dst_slice)
                    .expect("slice exists");
                for src_slice in placement.slices_of(proj.src) {
                    for n in src_slice.lo..src_slice.hi {
                        let key = neuron_key(src_slice.global_core, n - src_slice.lo);
                        images[img_idx].rows.entry(key).or_default();
                    }
                }
            }
            let mut rng = Xoshiro256::seed_from_u64(proj.seed ^ 0x005E_ED0F_5EED);
            for (s, d) in proj.pairs(n_src, n_dst) {
                let (w, delay) = proj.synapses.sample(&mut rng);
                let src_slice = placement.locate(proj.src, s);
                let dst_slice = placement.locate(proj.dst, d);
                let src_key = neuron_key(src_slice.global_core, s - src_slice.lo);
                // Find the destination image: slices and images are in
                // the same order.
                let img_idx = placement
                    .slices()
                    .iter()
                    .position(|sl| sl == dst_slice)
                    .expect("slice exists");
                let local_target = (d - dst_slice.lo) as u16;
                images[img_idx]
                    .rows
                    .entry(src_key)
                    .or_default()
                    .push(SynapticWord::new(w, delay, local_target));
            }
        }
        LoadedApp { images }
    }

    /// Total SDRAM across the machine, bytes.
    pub fn total_sdram_bytes(&self) -> u64 {
        self.images.iter().map(|i| i.sdram_bytes()).sum()
    }

    /// Total synapse count.
    pub fn total_synapses(&self) -> u64 {
        self.images.iter().map(|i| i.synapses()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Connector, NeuronKind, Synapses};
    use crate::place::Placer;
    use spinn_neuron::izhikevich::IzhikevichParams;

    fn kind() -> NeuronKind {
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
    }

    fn build_app(connector: Connector, sizes: (u32, u32)) -> (NetworkGraph, Placement, LoadedApp) {
        let mut net = NetworkGraph::new();
        let a = net.population("a", sizes.0, kind(), 5.0);
        let b = net.population("b", sizes.1, kind(), 0.0);
        net.project(a, b, connector, Synapses::constant(300, 2), 11);
        let placement = Placement::compute(&net, 4, 4, 17, 50, Placer::RoundRobin).unwrap();
        let app = LoadedApp::build(&net, &placement);
        (net, placement, app)
    }

    #[test]
    fn images_cover_all_neurons() {
        let (net, _, app) = build_app(Connector::OneToOne, (120, 120));
        let total: usize = app.images.iter().map(|i| i.neurons.len()).sum();
        assert_eq!(total as u64, net.total_neurons());
        for img in &app.images {
            assert_eq!(img.neurons.len(), img.bias_na.len());
            assert!(img.core >= 1);
        }
    }

    #[test]
    fn one_to_one_synapse_count_and_targets() {
        let (_, placement, app) = build_app(Connector::OneToOne, (120, 120));
        assert_eq!(app.total_synapses(), 120);
        // Every non-empty row has exactly one synapse; empty rows exist
        // for source neurons whose targets live on other cores.
        for img in &app.images {
            for (key, row) in &img.rows {
                assert!(row.len() <= 1, "one-to-one row for key {key:#x}");
                if let Some(w) = row.words().first() {
                    assert_eq!(w.weight_raw(), 300);
                    assert_eq!(w.delay_ms(), 2);
                }
            }
        }
        // Every destination core holds a row (possibly empty) for every
        // source neuron: 3 dest cores x 120 sources.
        let rows: usize = app.images.iter().map(|i| i.rows.len()).sum();
        assert_eq!(rows, 3 * 120);
        let non_empty: usize = app
            .images
            .iter()
            .flat_map(|i| i.rows.values())
            .filter(|r| !r.is_empty())
            .count();
        assert_eq!(non_empty, 120);
        let _ = placement;
    }

    #[test]
    fn all_to_all_row_shapes() {
        let (_, _, app) = build_app(Connector::AllToAll { allow_self: true }, (30, 40));
        assert_eq!(app.total_synapses(), 30 * 40);
        // Each source key's rows, summed over destination cores, must
        // cover all 40 targets: 40 targets over ceil(40/50)=1 core.
        let img_b = app.images.iter().find(|i| !i.rows.is_empty()).unwrap();
        for row in img_b.rows.values() {
            assert_eq!(row.len(), 40);
        }
    }

    #[test]
    fn sdram_accounting() {
        let (_, _, app) = build_app(Connector::AllToAll { allow_self: true }, (30, 40));
        // 30 rows x (4 + 40*4) bytes (all rows non-empty: all-to-all).
        assert_eq!(app.total_sdram_bytes(), 30 * (4 + 160));
    }

    #[test]
    fn deterministic_expansion() {
        let (_, _, a) = build_app(Connector::FixedProbability(0.3), (50, 50));
        let (_, _, b) = build_app(Connector::FixedProbability(0.3), (50, 50));
        assert_eq!(a.total_synapses(), b.total_synapses());
        for (x, y) in a.images.iter().zip(&b.images) {
            assert_eq!(x.rows.len(), y.rows.len());
        }
    }

    #[test]
    fn keys_are_consistent_with_placement() {
        let (_, placement, app) = build_app(Connector::OneToOne, (120, 120));
        for img in &app.images {
            let slice = placement
                .slices()
                .iter()
                .find(|s| s.chip == img.chip && s.core == img.core)
                .unwrap();
            assert_eq!(img.base_key, crate::keys::neuron_key(slice.global_core, 0));
        }
    }
}
