//! Streams projections into per-core synaptic matrices — the
//! "connectivity data constructed" step of §5.3, producing the SDRAM
//! images the DMA engine fetches at run time.
//!
//! The build is a **streaming pipeline**: each projection is expanded
//! through [`Projection::iter`](crate::graph::Projection::iter) one
//! pair at a time and scattered straight into the destination cores'
//! [`SynapticMatrixBuilder`]s; no global edge list is ever
//! materialized, and the finished per-core state is one contiguous
//! master-population-table + arena
//! ([`spinn_neuron::synmatrix::SynapticMatrix`]) per core — the §5.2/§6
//! memory model.

use spinn_neuron::izhikevich::IzhikevichNeuron;
use spinn_neuron::lif::LifNeuron;
use spinn_neuron::model::AnyNeuron;
use spinn_neuron::synmatrix::{SynapticMatrix, SynapticMatrixBuilder};
use spinn_noc::mesh::NodeCoord;
use spinn_sim::Xoshiro256;

use crate::graph::{NetworkGraph, NeuronKind};
use crate::keys::{core_base_key, neuron_key, CORE_MASK};
use crate::place::Placement;

/// Everything one application core needs loading.
#[derive(Clone, Debug)]
pub struct CoreImage {
    /// Chip holding the core.
    pub chip: NodeCoord,
    /// Core index (1-based).
    pub core: u8,
    /// AER base key of the core's neurons.
    pub base_key: u32,
    /// The neuron state vector.
    pub neurons: Vec<AnyNeuron>,
    /// Bias currents, nA.
    pub bias_na: Vec<f32>,
    /// The core's synaptic state: master population table + contiguous
    /// row arena, indexed by source-neuron AER key.
    pub matrix: SynapticMatrix,
}

impl CoreImage {
    /// SDRAM footprint of this core's synaptic data, bytes.
    pub fn sdram_bytes(&self) -> u64 {
        self.matrix.sdram_bytes()
    }

    /// Total synapse count.
    pub fn synapses(&self) -> u64 {
        self.matrix.total_synapses()
    }
}

/// The fully expanded application: one image per placed core.
#[derive(Clone, Debug)]
pub struct LoadedApp {
    /// Per-core images.
    pub images: Vec<CoreImage>,
}

impl LoadedApp {
    /// Expands a placed network into core images by streaming each
    /// projection directly into the destination cores' matrices.
    pub fn build(net: &NetworkGraph, placement: &Placement) -> LoadedApp {
        // One matrix builder per slice; images and slices share indices
        // (image `i` is slice `i`).
        let slices = placement.slices();
        let mut builders: Vec<SynapticMatrixBuilder> = (0..slices.len())
            .map(|_| SynapticMatrixBuilder::new())
            .collect();

        for proj in net.projections() {
            let n_src = net.pop(proj.src).size;
            let n_dst = net.pop(proj.dst).size;
            let src_slice_idxs = placement.slice_indices_of(proj.src);
            let dst_slice_idxs = placement.slice_indices_of(proj.dst);
            // The multicast tree delivers every source-core spike to
            // every core holding target neurons, whether or not that
            // particular neuron connects there — as on hardware, each
            // destination core's master population table covers the
            // *whole* source key block (missing synapses are empty
            // rows, not misses). Declare those blocks up front and
            // remember each (src slice, dst slice) block's first row.
            let mut first_rows = vec![vec![0u32; dst_slice_idxs.len()]; src_slice_idxs.len()];
            for (sp, &si) in src_slice_idxs.iter().enumerate() {
                let src = &slices[si];
                for (dp, &di) in dst_slice_idxs.iter().enumerate() {
                    first_rows[sp][dp] =
                        builders[di].block(core_base_key(src.global_core), CORE_MASK, src.len());
                }
            }
            // Stream the expansion. Pairs arrive in ascending source
            // order, so the source slice advances monotonically; the
            // destination slice is found by binary search over the
            // population's slice list.
            let mut rng = Xoshiro256::seed_from_u64(proj.seed ^ 0x005E_ED0F_5EED);
            let mut sp = 0usize; // current source slice position
            for (s, d) in proj.iter(n_src, n_dst) {
                let (w, delay) = proj.synapses.sample(&mut rng);
                while slices[src_slice_idxs[sp]].hi <= s {
                    sp += 1;
                }
                let src_slice = &slices[src_slice_idxs[sp]];
                debug_assert!(src_slice.lo <= s && s < src_slice.hi);
                let dp = dst_slice_idxs.partition_point(|&i| slices[i].hi <= d);
                let di = dst_slice_idxs[dp];
                let dst_slice = &slices[di];
                let local_target = (d - dst_slice.lo) as u16;
                let row = first_rows[sp][dp] + (s - src_slice.lo);
                builders[di].push(
                    row,
                    spinn_neuron::synapse::SynapticWord::new(w, delay, local_target),
                );
            }
        }

        let images: Vec<CoreImage> = slices
            .iter()
            .zip(builders)
            .map(|(s, builder)| {
                let n = s.len() as usize;
                let pop = net.pop(s.pop);
                let neurons = (0..n)
                    .map(|_| match pop.kind {
                        NeuronKind::Izhikevich(p) => {
                            AnyNeuron::Izhikevich(IzhikevichNeuron::new(p))
                        }
                        NeuronKind::Lif(p) => AnyNeuron::Lif(LifNeuron::new(p)),
                    })
                    .collect();
                CoreImage {
                    chip: s.chip,
                    core: s.core,
                    base_key: neuron_key(s.global_core, 0),
                    neurons,
                    bias_na: vec![pop.bias_na; n],
                    matrix: builder.finish(),
                }
            })
            .collect();
        LoadedApp { images }
    }

    /// Total SDRAM across the machine, bytes.
    pub fn total_sdram_bytes(&self) -> u64 {
        self.images.iter().map(|i| i.sdram_bytes()).sum()
    }

    /// Total synapse count.
    pub fn total_synapses(&self) -> u64 {
        self.images.iter().map(|i| i.synapses()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Connector, NeuronKind, Synapses};
    use crate::place::Placer;
    use spinn_neuron::izhikevich::IzhikevichParams;

    fn kind() -> NeuronKind {
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
    }

    fn build_app(connector: Connector, sizes: (u32, u32)) -> (NetworkGraph, Placement, LoadedApp) {
        let mut net = NetworkGraph::new();
        let a = net.population("a", sizes.0, kind(), 5.0);
        let b = net.population("b", sizes.1, kind(), 0.0);
        net.project(a, b, connector, Synapses::constant(300, 2), 11);
        let placement = Placement::compute(&net, 4, 4, 17, 50, Placer::RoundRobin).unwrap();
        let app = LoadedApp::build(&net, &placement);
        (net, placement, app)
    }

    #[test]
    fn images_cover_all_neurons() {
        let (net, _, app) = build_app(Connector::OneToOne, (120, 120));
        let total: usize = app.images.iter().map(|i| i.neurons.len()).sum();
        assert_eq!(total as u64, net.total_neurons());
        for img in &app.images {
            assert_eq!(img.neurons.len(), img.bias_na.len());
            assert!(img.core >= 1);
        }
    }

    #[test]
    fn one_to_one_synapse_count_and_targets() {
        let (_, placement, app) = build_app(Connector::OneToOne, (120, 120));
        assert_eq!(app.total_synapses(), 120);
        // Every non-empty row has exactly one synapse; empty rows exist
        // for source neurons whose targets live on other cores.
        for img in &app.images {
            for (key, row_idx) in img.matrix.iter_rows() {
                let row = img.matrix.row(row_idx);
                assert!(row.len() <= 1, "one-to-one row for key {key:#x}");
                if let Some(w) = row.first() {
                    assert_eq!(w.weight_raw(), 300);
                    assert_eq!(w.delay_ms(), 2);
                }
            }
        }
        // Every destination core holds a row (possibly empty) for every
        // source neuron: 3 dest cores x 120 sources.
        let rows: usize = app.images.iter().map(|i| i.matrix.n_rows()).sum();
        assert_eq!(rows, 3 * 120);
        let non_empty: usize = app
            .images
            .iter()
            .flat_map(|i| {
                let m = &i.matrix;
                m.iter_rows()
                    .map(move |(_, r)| m.row_len(r))
                    .collect::<Vec<_>>()
            })
            .filter(|&len| len > 0)
            .count();
        assert_eq!(non_empty, 120);
        let _ = placement;
    }

    #[test]
    fn all_to_all_row_shapes() {
        let (_, _, app) = build_app(Connector::AllToAll { allow_self: true }, (30, 40));
        assert_eq!(app.total_synapses(), 30 * 40);
        // Each source key's rows, summed over destination cores, must
        // cover all 40 targets: 40 targets over ceil(40/50)=1 core.
        let img_b = app.images.iter().find(|i| !i.matrix.is_empty()).unwrap();
        for (_, row) in img_b.matrix.iter_rows() {
            assert_eq!(img_b.matrix.row_len(row), 40);
        }
    }

    #[test]
    fn sdram_accounting() {
        let (_, _, app) = build_app(Connector::AllToAll { allow_self: true }, (30, 40));
        // 30 rows x (4 + 40*4) bytes (all rows non-empty: all-to-all).
        assert_eq!(app.total_sdram_bytes(), 30 * (4 + 160));
    }

    /// The loader's byte totals must equal the summed arena sizes —
    /// the invariant the machine's SDRAM capacity check builds on.
    #[test]
    fn loader_totals_equal_summed_arena_sizes() {
        let (_, _, app) = build_app(Connector::FixedProbability(0.2), (90, 110));
        let summed: u64 = app.images.iter().map(|i| i.matrix.sdram_bytes()).sum();
        assert_eq!(app.total_sdram_bytes(), summed);
        let by_rows: u64 = app
            .images
            .iter()
            .flat_map(|i| {
                let m = &i.matrix;
                m.iter_rows()
                    .map(move |(_, r)| m.row_bytes(r) as u64)
                    .collect::<Vec<_>>()
            })
            .sum();
        assert_eq!(summed, by_rows);
        // Resident bytes: arena + descriptors, strictly less than a
        // HashMap-of-Vecs would need for the same synapse count.
        let resident: u64 = app.images.iter().map(|i| i.matrix.resident_bytes()).sum();
        assert!(resident >= app.total_synapses() * 4);
    }

    #[test]
    fn deterministic_expansion() {
        let (_, _, a) = build_app(Connector::FixedProbability(0.3), (50, 50));
        let (_, _, b) = build_app(Connector::FixedProbability(0.3), (50, 50));
        assert_eq!(a.total_synapses(), b.total_synapses());
        for (x, y) in a.images.iter().zip(&b.images) {
            assert_eq!(x.matrix, y.matrix);
        }
    }

    #[test]
    fn keys_are_consistent_with_placement() {
        let (_, placement, app) = build_app(Connector::OneToOne, (120, 120));
        for img in &app.images {
            let slice = placement
                .slices()
                .iter()
                .find(|s| s.chip == img.chip && s.core == img.core)
                .unwrap();
            assert_eq!(img.base_key, crate::keys::neuron_key(slice.global_core, 0));
        }
    }

    /// Two projections between the same populations must merge into the
    /// same per-core rows (words appended in projection order).
    #[test]
    fn overlapping_projections_share_rows() {
        let mut net = NetworkGraph::new();
        let a = net.population("a", 10, kind(), 0.0);
        let b = net.population("b", 10, kind(), 0.0);
        net.project(a, b, Connector::OneToOne, Synapses::constant(100, 1), 1);
        net.project(a, b, Connector::OneToOne, Synapses::constant(-50, 2), 2);
        let placement = Placement::compute(&net, 2, 2, 17, 50, Placer::RoundRobin).unwrap();
        let app = LoadedApp::build(&net, &placement);
        assert_eq!(app.total_synapses(), 20);
        let img = &app.images[1];
        for (_, row_idx) in img.matrix.iter_rows() {
            let row = img.matrix.row(row_idx);
            assert_eq!(row.len(), 2);
            assert_eq!(row[0].weight_raw(), 100);
            assert_eq!(row[1].weight_raw(), -50);
        }
    }
}
