//! Routing-table minimization: merging same-chip entries whose routes
//! agree into wider masked entries (Ordered-Covering style).
//!
//! The router's ternary CAM has 1024 entries (§4); fitting real
//! workloads into it is the central mapping problem. The raw plan emits
//! one `(key, mask)` entry per source core per tree chip; this module
//! compresses each chip's table with a two-level-logic view of the
//! 21-bit key-block space:
//!
//! * **ON-set** — the blocks this chip must route with a given
//!   [`RouteSet`](spinn_noc::table::RouteSet): the chip's existing
//!   entries, grouped by route.
//! * **OFF-set** — blocks that must *not* be captured: blocks whose
//!   multicast trees traverse this chip with a different route or via a
//!   default-routed (elided) segment — a table hit would hijack them —
//!   plus all dead key space outside every population's allocated span.
//! * **don't-care set** — live population key space whose trees never
//!   visit this chip. Those packets cannot arrive here, so a widened
//!   entry may cover them without changing any observable routing
//!   behaviour (the relaxation real Ordered-Covering uses).
//!
//! Each ON block is greedily expanded into the largest cube (ternary
//! pattern) that avoids the OFF-set, clearing key bits from least to
//! most significant so sibling slices of one population — allocated
//! aligned, consecutive blocks by [`crate::place::Placement`] — collapse
//! first. First-match priority is untouched: cubes of different route
//! groups never overlap on any key that can reach the chip, so the
//! emitted order is behaviour-preserving by construction.
//!
//! [`crate::route::RoutingPlan::minimized`] applies this per chip;
//! [`crate::route::RoutingPlan::verify_against`] replays every source
//! through both table sets and checks the delivered core sets match.

use spinn_noc::table::McTableEntry;

use crate::keys::{CORE_MASK, NEURON_BITS};

/// Width of the key-block id space (32-bit key minus the neuron field).
const BLOCK_BITS: u32 = 32 - NEURON_BITS;

/// Largest cube a merge may enumerate, in cleared bits (2^10 = 1024
/// blocks) — bounds worst-case work per entry without limiting any
/// realistic merge.
const MAX_CUBE_BITS: u32 = 10;

/// Per-chip context for minimization.
pub struct ChipContext<'a> {
    /// Key blocks whose multicast trees traverse this chip (sorted).
    /// These must keep their exact lookup result, so a widened entry may
    /// only cover one if it belongs to the entry's own route group.
    pub barred: &'a [u32],
    /// Allocated population key spans `(base block, width)`, sorted by
    /// base. Blocks outside every span are dead keys and must never gain
    /// a table hit.
    pub spans: &'a [(u32, u32)],
}

impl ChipContext<'_> {
    fn in_spans(&self, block: u32) -> bool {
        let i = self.spans.partition_point(|&(base, _)| base <= block);
        i > 0 && {
            let (base, width) = self.spans[i - 1];
            block < base + width
        }
    }

    fn is_barred(&self, block: u32) -> bool {
        self.barred.binary_search(&block).is_ok()
    }
}

/// One widened entry under construction.
#[derive(Clone, Debug)]
struct Cube {
    route: spinn_noc::table::RouteSet,
    base: u32,
    mask: u32,
    /// Merged into another cube (no longer emitted).
    merged: bool,
    /// Produced by a shadowed merge (must be emitted after every
    /// unshadowed cube).
    shadowed: bool,
    /// Serves as first-match cover for a block another cube captured;
    /// must stay unmerged and early.
    pinned: bool,
}

impl Cube {
    fn covers(&self, block: u32) -> bool {
        block & self.mask == self.base
    }

    fn cleared_bits(&self) -> u32 {
        (!self.mask & ((1 << BLOCK_BITS) - 1)).count_ones()
    }
}

/// Minimizes one chip's table.
///
/// Entries must be the plan-emitted kind — pairwise-distinct key blocks
/// under the core mask; anything else (hand-built tables with custom
/// masks or overlapping entries) is returned unchanged, since its
/// first-match semantics cannot be safely re-derived.
pub fn minimize_chip(entries: &[McTableEntry], ctx: &ChipContext) -> Vec<McTableEntry> {
    if entries.len() < 2 {
        return entries.to_vec();
    }
    let mut ids: Vec<u32> = Vec::with_capacity(entries.len());
    for e in entries {
        if e.mask != CORE_MASK {
            return entries.to_vec();
        }
        ids.push(e.key >> NEURON_BITS);
    }
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return entries.to_vec();
    }

    // Route groups in first-appearance order (deterministic output).
    let mut groups: Vec<(spinn_noc::table::RouteSet, Vec<u32>)> = Vec::new();
    for (e, &id) in entries.iter().zip(&ids) {
        match groups.iter_mut().find(|(r, _)| *r == e.route) {
            Some((_, members)) => members.push(id),
            None => groups.push((e.route, vec![id])),
        }
    }

    // Phase 1: greedy per-group cube expansion over free key space.
    let mut cubes: Vec<Cube> = Vec::new();
    for (route, on) in &mut groups {
        on.sort_unstable();
        let mut covered = vec![false; on.len()];
        for i in 0..on.len() {
            if covered[i] {
                continue;
            }
            let (base, cube_mask, members) = expand_cube(on[i], on, ctx);
            for m in members {
                if let Ok(j) = on.binary_search(&m) {
                    covered[j] = true;
                }
            }
            cubes.push(Cube {
                route: *route,
                base,
                mask: cube_mask,
                merged: false,
                shadowed: false,
                pinned: false,
            });
        }
    }

    // Phase 2: shadowed merges — two same-route cubes combine even when
    // the hull captures blocks routed differently here, provided every
    // such block keeps first-match cover from an earlier, unmerged cube
    // of its own route. Covering cubes get pinned; shadowed results are
    // emitted after all unshadowed cubes, so the cover always wins.
    let routes_by_block: std::collections::HashMap<u32, spinn_noc::table::RouteSet> = entries
        .iter()
        .zip(&ids)
        .map(|(e, &id)| (id, e.route))
        .collect();
    let block_route = |block: u32| routes_by_block.get(&block).copied();
    loop {
        let mut did_merge = false;
        'search: for i in 0..cubes.len() {
            if cubes[i].merged || cubes[i].pinned {
                continue;
            }
            for j in i + 1..cubes.len() {
                if cubes[j].merged || cubes[j].pinned || cubes[j].route != cubes[i].route {
                    continue;
                }
                let mask = cubes[i].mask & cubes[j].mask & !(cubes[i].base ^ cubes[j].base);
                let hull = Cube {
                    route: cubes[i].route,
                    base: cubes[i].base & mask,
                    mask,
                    merged: false,
                    shadowed: true,
                    pinned: false,
                };
                if hull.cleared_bits() > MAX_CUBE_BITS {
                    continue;
                }
                let Some(pins) = shadowed_capture_pins(&hull, &cubes, ctx, &block_route) else {
                    continue;
                };
                for p in pins {
                    cubes[p].pinned = true;
                }
                cubes[i] = hull;
                cubes[j].merged = true;
                did_merge = true;
                break 'search;
            }
        }
        if !did_merge {
            break;
        }
    }

    let mut out: Vec<McTableEntry> = Vec::new();
    for shadowed in [false, true] {
        for c in cubes.iter().filter(|c| !c.merged && c.shadowed == shadowed) {
            out.push(McTableEntry {
                key: c.base << NEURON_BITS,
                mask: c.mask << NEURON_BITS,
                route: c.route,
            });
        }
    }
    debug_assert!(out.len() <= entries.len());
    out
}

/// Checks whether every block the `hull` cube covers is admissible:
/// routed identically (same group), free live key space, or shadowed by
/// an earlier unmerged cube of its own route. Returns the cube indices
/// to pin, or `None` if any covered block would be hijacked.
fn shadowed_capture_pins(
    hull: &Cube,
    cubes: &[Cube],
    ctx: &ChipContext,
    block_route: &impl Fn(u32) -> Option<spinn_noc::table::RouteSet>,
) -> Option<Vec<usize>> {
    let dont_care: Vec<u32> = (0..BLOCK_BITS)
        .filter(|&b| hull.mask & (1 << b) == 0)
        .collect();
    let mut pins = Vec::new();
    for pattern in 0u32..(1 << dont_care.len()) {
        let mut block = hull.base;
        for (i, &bit) in dont_care.iter().enumerate() {
            if pattern & (1 << i) != 0 {
                block |= 1 << bit;
            }
        }
        match block_route(block) {
            // The block has its own entry here. Same route: the hull is
            // its cover. Different route: it needs an earlier, unmerged,
            // unshadowed cube of its own route to win first-match.
            Some(route) if route == hull.route => {}
            Some(route) => {
                let cover = cubes.iter().position(|c| {
                    !c.merged && !c.shadowed && c.route == route && c.covers(block)
                })?;
                pins.push(cover);
            }
            // No entry: must be free live space — never a traversing
            // (default-routed) block, never dead key space.
            None => {
                if ctx.is_barred(block) || !ctx.in_spans(block) {
                    return None;
                }
            }
        }
    }
    Some(pins)
}

/// Grows the largest valid cube around `seed`: key bits are cleared from
/// LSB to MSB while every block the widened cube would newly cover is
/// either in the route's own ON-set or free (live span, not barred).
/// Returns `(base block, block mask, covered blocks)`.
fn expand_cube(seed: u32, on: &[u32], ctx: &ChipContext) -> (u32, u32, Vec<u32>) {
    let mut mask: u32 = (1 << BLOCK_BITS) - 1;
    let mut members = vec![seed];
    for bit in 0..BLOCK_BITS {
        if members.len() as u32 > (1 << (MAX_CUBE_BITS - 1)) {
            break;
        }
        let b = 1u32 << bit;
        let admissible = |block: u32| {
            on.binary_search(&block).is_ok() || (ctx.in_spans(block) && !ctx.is_barred(block))
        };
        if members.iter().all(|&m| admissible(m ^ b)) {
            mask &= !b;
            let mirror: Vec<u32> = members.iter().map(|&m| m ^ b).collect();
            members.extend(mirror);
        }
    }
    (seed & mask, mask, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::core_key_mask;
    use spinn_noc::table::RouteSet;

    fn entry(block: u32, route_bits: u32) -> McTableEntry {
        let (key, mask) = core_key_mask(block);
        McTableEntry {
            key,
            mask,
            route: RouteSet::from_bits(route_bits),
        }
    }

    /// Linear first-match lookup over raw entries.
    fn lookup(entries: &[McTableEntry], key: u32) -> Option<RouteSet> {
        entries.iter().find(|e| e.matches(key)).map(|e| e.route)
    }

    #[test]
    fn aligned_siblings_merge_to_one_entry() {
        // Blocks 0..4 (one population span), same route, all barred
        // (their trees traverse this chip — they are the entries).
        let entries: Vec<_> = (0..4).map(|b| entry(b, 0x40)).collect();
        let ctx = ChipContext {
            barred: &[0, 1, 2, 3],
            spans: &[(0, 4)],
        };
        let min = minimize_chip(&entries, &ctx);
        assert_eq!(min.len(), 1);
        assert_eq!(min[0].key, 0);
        assert_eq!(min[0].mask, CORE_MASK & !(3 << NEURON_BITS));
        for b in 0..4u32 {
            assert_eq!(
                lookup(&min, b << NEURON_BITS),
                Some(RouteSet::from_bits(0x40))
            );
        }
    }

    #[test]
    fn different_routes_never_merge_or_capture_each_other() {
        let entries = vec![entry(0, 0x40), entry(1, 0x80)];
        let ctx = ChipContext {
            barred: &[0, 1],
            spans: &[(0, 2)],
        };
        let min = minimize_chip(&entries, &ctx);
        assert_eq!(min.len(), 2);
        assert_eq!(lookup(&min, 0), Some(RouteSet::from_bits(0x40)));
        assert_eq!(
            lookup(&min, 1 << NEURON_BITS),
            Some(RouteSet::from_bits(0x80))
        );
    }

    #[test]
    fn free_live_blocks_may_be_captured_but_dead_space_never() {
        // Blocks 0 and 2 share a route; block 1 and 3 are live elsewhere
        // (in span, not traversing here) so the cube {0..4} is legal.
        let entries = vec![entry(0, 0x40), entry(2, 0x40)];
        let ctx = ChipContext {
            barred: &[0, 2],
            spans: &[(0, 4)],
        };
        let min = minimize_chip(&entries, &ctx);
        assert_eq!(min.len(), 1);
        // Captured free blocks now hit — harmless, they never arrive.
        assert!(lookup(&min, 1 << NEURON_BITS).is_some());
        // Dead space beyond the span must still miss.
        assert_eq!(lookup(&min, 4 << NEURON_BITS), None);
        assert_eq!(lookup(&min, 0xFFFF_FFFF), None);
    }

    #[test]
    fn barred_traversing_block_is_not_captured() {
        // Block 1 default-routes through this chip (elided entry): a
        // capture would hijack it, so 0 and 2 cannot widen over it...
        let entries = vec![entry(0, 0x40), entry(2, 0x40)];
        let ctx = ChipContext {
            barred: &[0, 1, 2],
            spans: &[(0, 4)],
        };
        let min = minimize_chip(&entries, &ctx);
        assert_eq!(lookup(&min, 1 << NEURON_BITS), None, "{min:?}");
        // ...but 0 and 2 still merge over the don't-care slice bit.
        assert_eq!(min.len(), 1);
        assert_eq!(lookup(&min, 0), Some(RouteSet::from_bits(0x40)));
        assert_eq!(
            lookup(&min, 2 << NEURON_BITS),
            Some(RouteSet::from_bits(0x40))
        );
    }

    #[test]
    fn non_core_masks_are_left_untouched() {
        let odd = McTableEntry {
            key: 0x42,
            mask: u32::MAX,
            route: RouteSet::from_bits(0x40),
        };
        let entries = vec![odd, entry(1, 0x40)];
        let ctx = ChipContext {
            barred: &[1],
            spans: &[(0, 2)],
        };
        assert_eq!(minimize_chip(&entries, &ctx), entries);
    }

    #[test]
    fn minimization_is_deterministic_and_idempotent_on_lookups() {
        let entries: Vec<_> = [0u32, 1, 5, 6, 7, 9]
            .into_iter()
            .map(|b| entry(b, if b < 5 { 0x40 } else { 0x41 }))
            .collect();
        let barred = [0u32, 1, 5, 6, 7, 9, 12];
        let ctx = ChipContext {
            barred: &barred,
            spans: &[(0, 8), (8, 8)],
        };
        let a = minimize_chip(&entries, &ctx);
        let b = minimize_chip(&entries, &ctx);
        assert_eq!(a, b);
        assert!(a.len() < entries.len());
        // Every original block still resolves to its original route;
        // every barred block keeps its exact result.
        for &blk in &barred {
            assert_eq!(
                lookup(&a, blk << NEURON_BITS),
                lookup(&entries, blk << NEURON_BITS),
                "block {blk}"
            );
        }
    }
}
