//! AER key allocation (§4: "Identifying neuron spikes by using a unique
//! identifier for the source neuron is known as Address Event
//! Representation").
//!
//! The scheme is hierarchical — population / core-slice / neuron:
//!
//! ```text
//! key[31:11] = key block = population base + slice index within it
//! key[10:0]  = neuron index within the core slice
//! ```
//!
//! Each population receives a span of consecutive key blocks whose
//! length is the slice count rounded up to a power of two, **aligned**
//! to that length (see [`Placement`](crate::place::Placement)). The
//! alignment is what makes tables minimizable: all slices of one
//! population share every destination (projections are population-
//! level), so wherever their routes agree a single widened ternary entry
//! `(pop_base << 11, CORE_MASK with the slice bits cleared)` covers the
//! whole population — the Ordered-Covering-style compression performed
//! by [`crate::minimize`].
//!
//! The 21-bit block field covers the full million-core machine
//! (256 x 256 chips x 20 cores = 1,310,720 < 2^21, and pow2 padding at
//! most doubles that numbering) and the 11-bit neuron field matches the
//! real toolchain's per-core limit (2048 neurons, comfortably above what
//! the 64 KB DTCM allows anyway).
//!
//! All spikes from one source core match a single ternary entry
//! `(base, 0xFFFF_F800)` — at most one CAM entry per source core per
//! chip on its multicast tree, the property the router's 1024-entry CAM
//! depends on; minimization then merges sibling cores' entries below
//! even that.

/// Bits reserved for the neuron index (fits within the synaptic word's
/// 12-bit target field).
pub const NEURON_BITS: u32 = 11;

/// The ternary mask matching a whole core's key block.
pub const CORE_MASK: u32 = !((1 << NEURON_BITS) - 1);

/// The base key of a core's block.
pub fn core_base_key(global_core: u32) -> u32 {
    global_core << NEURON_BITS
}

/// The `(key, mask)` pair matching every neuron on a core.
pub fn core_key_mask(global_core: u32) -> (u32, u32) {
    (core_base_key(global_core), CORE_MASK)
}

/// The key of one neuron on a core.
///
/// # Panics
///
/// Panics if `neuron` does not fit in the 12-bit field.
pub fn neuron_key(global_core: u32, neuron: u32) -> u32 {
    assert!(
        neuron < (1 << NEURON_BITS),
        "neuron index {neuron} too large"
    );
    core_base_key(global_core) | neuron
}

/// Recovers `(global_core, neuron)` from a key.
pub fn split_key(key: u32) -> (u32, u32) {
    (key >> NEURON_BITS, key & !CORE_MASK)
}

/// Key blocks reserved for a population of `n_slices` core slices: the
/// slice count rounded up to a power of two, so the population's span
/// can sit aligned and be matched by one ternary entry.
pub fn pop_block_width(n_slices: u32) -> u32 {
    n_slices.max(1).next_power_of_two()
}

/// The `(key, mask)` pair matching every neuron of every slice in an
/// aligned population span of `width` key blocks starting at
/// `base_block`.
///
/// # Panics
///
/// Panics if `width` is not a power of two or `base_block` is not
/// aligned to it.
pub fn pop_key_mask(base_block: u32, width: u32) -> (u32, u32) {
    assert!(width.is_power_of_two(), "span width must be a power of two");
    assert!(
        base_block.is_multiple_of(width),
        "span base must be aligned"
    );
    (
        base_block << NEURON_BITS,
        CORE_MASK & !((width - 1) << NEURON_BITS),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for core in [0u32, 1, 17, 1000, 500_000, 1_310_719] {
            for neuron in [0u32, 1, 2047] {
                let key = neuron_key(core, neuron);
                assert_eq!(split_key(key), (core, neuron));
            }
        }
    }

    #[test]
    fn mask_matches_whole_block_only() {
        let (base, mask) = core_key_mask(42);
        for neuron in 0..2048 {
            let key = neuron_key(42, neuron);
            assert_eq!(key & mask, base, "neuron {neuron} must match");
        }
        let other = neuron_key(43, 0);
        assert_ne!(other & mask, base, "other cores must not match");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_neuron_rejected() {
        neuron_key(0, 2048);
    }

    #[test]
    fn million_core_machine_fits_keyspace() {
        // 256x256 chips x 20 cores = 1,310,720 cores < 2^21.
        let max_core = 256 * 256 * 20 - 1;
        let key = neuron_key(max_core, 2047);
        assert_eq!(split_key(key), (max_core, 2047));
    }

    #[test]
    fn pop_span_mask_covers_exactly_the_span() {
        assert_eq!(pop_block_width(1), 1);
        assert_eq!(pop_block_width(3), 4);
        assert_eq!(pop_block_width(8), 8);
        let (key, mask) = pop_key_mask(8, 4);
        for block in 8..12 {
            assert_eq!(neuron_key(block, 99) & mask, key, "block {block}");
        }
        for block in [7u32, 12, 0] {
            assert_ne!(neuron_key(block, 99) & mask, key, "block {block}");
        }
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_span_rejected() {
        let _ = pop_key_mask(6, 4);
    }
}
