//! The abstract neural network: populations, projections, connectors.

use spinn_neuron::izhikevich::IzhikevichParams;
use spinn_neuron::lif::LifParams;
use spinn_sim::Xoshiro256;

/// Identifies a population within a [`NetworkGraph`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PopulationId(pub(crate) usize);

impl PopulationId {
    /// The population's index in creation order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from [`PopulationId::index`] (session snapshot
    /// restore). The caller must ensure the index names a population of
    /// the same network the index was taken from.
    pub fn from_index(index: usize) -> PopulationId {
        PopulationId(index)
    }
}

/// Which point-neuron model a population runs.
#[derive(Copy, Clone, Debug)]
pub enum NeuronKind {
    /// Izhikevich with the given parameters.
    Izhikevich(IzhikevichParams),
    /// Leaky integrate-and-fire with the given parameters.
    Lif(LifParams),
}

/// One population of identical neurons.
#[derive(Clone, Debug)]
pub struct Population {
    /// Human-readable name.
    pub name: String,
    /// Number of neurons.
    pub size: u32,
    /// Neuron model.
    pub kind: NeuronKind,
    /// Constant bias current, nA (stands in for background input).
    pub bias_na: f32,
}

/// Connection pattern of a projection.
#[derive(Copy, Clone, Debug)]
pub enum Connector {
    /// Neuron `i` connects to neuron `i` (requires equal sizes).
    OneToOne,
    /// Every source to every target; self-connections allowed only when
    /// the flag is set (relevant for recurrent projections).
    AllToAll {
        /// Include `i -> i` when source and target populations coincide.
        allow_self: bool,
    },
    /// Every pair connects independently with this probability.
    FixedProbability(f64),
    /// Every source neuron connects to exactly this many distinct,
    /// uniformly chosen targets.
    FixedFanOut(u32),
}

/// Weight/delay specification of a projection's synapses.
#[derive(Copy, Clone, Debug)]
pub struct Synapses {
    /// Minimum weight, 8.8 fixed point (negative = inhibitory).
    pub weight_min_raw: i16,
    /// Maximum weight, 8.8 fixed point.
    pub weight_max_raw: i16,
    /// Minimum delay, ms (1–16).
    pub delay_min_ms: u8,
    /// Maximum delay, ms (1–16).
    pub delay_max_ms: u8,
}

impl Synapses {
    /// Constant weight and delay.
    pub fn constant(weight_raw: i16, delay_ms: u8) -> Self {
        Synapses {
            weight_min_raw: weight_raw,
            weight_max_raw: weight_raw,
            delay_min_ms: delay_ms,
            delay_max_ms: delay_ms,
        }
    }

    /// Uniformly distributed weight and delay.
    ///
    /// # Panics
    ///
    /// Panics if ranges are inverted or delays are outside 1–16 ms.
    pub fn uniform(weight_raw: (i16, i16), delay_ms: (u8, u8)) -> Self {
        assert!(weight_raw.0 <= weight_raw.1, "weight range inverted");
        assert!(delay_ms.0 <= delay_ms.1, "delay range inverted");
        assert!(
            (1..=16).contains(&delay_ms.0) && delay_ms.1 <= 16,
            "delays must lie in 1..=16 ms"
        );
        Synapses {
            weight_min_raw: weight_raw.0,
            weight_max_raw: weight_raw.1,
            delay_min_ms: delay_ms.0,
            delay_max_ms: delay_ms.1,
        }
    }

    /// The distribution in `spinn-neuron`'s generator-spec form — the
    /// single implementation both the eager build stream and lazy row
    /// replay draw from (one code path, one bit-exact stream).
    pub fn gen(&self) -> spinn_neuron::gen::GenSynapses {
        spinn_neuron::gen::GenSynapses {
            weight_min_raw: self.weight_min_raw,
            weight_max_raw: self.weight_max_raw,
            delay_min_ms: self.delay_min_ms,
            delay_max_ms: self.delay_max_ms,
        }
    }

    /// Draws a concrete (weight, delay) pair.
    pub fn sample(&self, rng: &mut Xoshiro256) -> (i16, u8) {
        self.gen().sample(rng)
    }
}

/// One projection between populations.
#[derive(Clone, Debug)]
pub struct Projection {
    /// Source population.
    pub src: PopulationId,
    /// Target population.
    pub dst: PopulationId,
    /// Connection pattern.
    pub connector: Connector,
    /// Synapse parameters.
    pub synapses: Synapses,
    /// Expansion seed (same seed = same concrete connectivity).
    pub seed: u64,
}

impl Projection {
    /// Expands the projection into a **streaming** iterator of concrete
    /// `(src, dst)` neuron pairs, deterministically from the seed — no
    /// edge list is ever materialized, so expansion memory is `O(1)`
    /// (plus a target permutation for [`Connector::FixedFanOut`])
    /// regardless of network size. Pairs are produced in ascending
    /// source order.
    pub fn iter(&self, n_src: u32, n_dst: u32) -> ConnectorIter {
        let rng = Xoshiro256::seed_from_u64(self.seed ^ 0x50C1_A11E);
        let state = match self.connector {
            Connector::OneToOne => IterState::OneToOne {
                i: 0,
                n: n_src.min(n_dst),
            },
            Connector::AllToAll { allow_self } => IterState::AllToAll {
                s: 0,
                d: 0,
                skip_self: !allow_self && self.src == self.dst,
            },
            Connector::FixedProbability(p) if p >= 1.0 => IterState::AllToAll {
                s: 0,
                d: 0,
                skip_self: false,
            },
            Connector::FixedProbability(p) => IterState::Bernoulli {
                rng,
                p,
                cursor: 0,
                total: if p > 0.0 {
                    n_src as u64 * n_dst as u64
                } else {
                    0
                },
            },
            Connector::FixedFanOut(k) => {
                let k = k.min(n_dst);
                IterState::FanOut {
                    targets: (0..n_dst).collect(),
                    rng,
                    k,
                    next_s: 0,
                    j: k, // force a shuffle on the first `next`
                }
            }
        };
        ConnectorIter {
            n_src,
            n_dst,
            state,
        }
    }

    /// Expands the projection into a materialized edge list (a
    /// convenience wrapper over [`Projection::iter`], kept for tests
    /// and small-network tooling; large builds should stream).
    pub fn pairs(&self, n_src: u32, n_dst: u32) -> Vec<(u32, u32)> {
        let it = self.iter(n_src, n_dst);
        let mut v = Vec::with_capacity(it.size_hint().0);
        v.extend(it);
        v
    }
}

/// Streaming expansion of one projection: yields `(src, dst)` pairs in
/// ascending source order without materializing the edge list. Obtained
/// from [`Projection::iter`].
///
/// Capacity arithmetic is done in `u64`/`usize` throughout (the
/// materializing predecessor computed `n_src * n_dst` in `u32`, which
/// wraps for populations ≥ 2¹⁶; see `size_hint`).
#[derive(Clone, Debug)]
pub struct ConnectorIter {
    n_src: u32,
    n_dst: u32,
    state: IterState,
}

#[derive(Clone, Debug)]
enum IterState {
    /// `i -> i` for `i < n`.
    OneToOne { i: u32, n: u32 },
    /// Dense row-major scan, optionally skipping the diagonal.
    AllToAll { s: u32, d: u32, skip_self: bool },
    /// Independent inclusion with probability `p`, visited by sampling
    /// geometric gaps between successes over the flattened `(s, d)`
    /// index space — `O(edges)` draws instead of `O(n_src * n_dst)`
    /// Bernoulli trials.
    Bernoulli {
        rng: Xoshiro256,
        p: f64,
        /// Next candidate flattened index.
        cursor: u64,
        /// One past the last flattened index (0 when exhausted).
        total: u64,
    },
    /// Per source: a fresh shuffle of the target permutation, then the
    /// first `k` entries. `next_s` is the next source to deal; `j`
    /// indexes the current source's deal (`j == k` means no current
    /// source).
    FanOut {
        rng: Xoshiro256,
        targets: Vec<u32>,
        k: u32,
        next_s: u32,
        j: u32,
    },
}

impl Iterator for ConnectorIter {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        match &mut self.state {
            IterState::OneToOne { i, n } => {
                if i < n {
                    let v = *i;
                    *i += 1;
                    Some((v, v))
                } else {
                    None
                }
            }
            IterState::AllToAll { s, d, skip_self } => loop {
                if *s >= self.n_src {
                    return None;
                }
                let pair = (*s, *d);
                *d += 1;
                if *d >= self.n_dst {
                    *d = 0;
                    *s += 1;
                }
                if !(*skip_self && pair.0 == pair.1) {
                    return Some(pair);
                }
            },
            IterState::Bernoulli {
                rng,
                p,
                cursor,
                total,
            } => {
                if *cursor >= *total {
                    return None;
                }
                // Geometric inter-success gap: the run length of a
                // Bernoulli(p) process, sampled in one draw. `ln_1p`
                // keeps the denominator finite and non-zero for tiny
                // `p` (where `(1.0 - p).ln()` rounds to 0 and would
                // invert the probability to 1), and the float→int cast
                // saturates, so sub-2e-18 probabilities overshoot
                // `total` and terminate rather than overflow.
                let u = rng.next_f64();
                let skip = ((1.0 - u).ln() / (-*p).ln_1p()).floor() as u64;
                let idx = cursor.checked_add(skip).unwrap_or(u64::MAX);
                if idx >= *total {
                    *cursor = *total;
                    return None;
                }
                *cursor = idx + 1;
                Some((
                    (idx / self.n_dst as u64) as u32,
                    (idx % self.n_dst as u64) as u32,
                ))
            }
            IterState::FanOut {
                rng,
                targets,
                k,
                next_s,
                j,
            } => {
                if *k == 0 {
                    return None;
                }
                if *j >= *k {
                    if *next_s >= self.n_src {
                        return None;
                    }
                    // Deal the next source a fresh permutation — the
                    // same `shuffle` call sequence as the materializing
                    // expansion, so the concrete connectivity (and the
                    // golden traces built on it) is unchanged.
                    rng.shuffle(targets);
                    *next_s += 1;
                    *j = 0;
                }
                let pair = (*next_s - 1, targets[*j as usize]);
                *j += 1;
                Some(pair)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        fn to_usize(v: u64) -> usize {
            usize::try_from(v).unwrap_or(usize::MAX)
        }
        match &self.state {
            IterState::OneToOne { i, n } => {
                let left = (n - i) as usize;
                (left, Some(left))
            }
            IterState::AllToAll { s, d, skip_self } => {
                let scanned = *s as u64 * self.n_dst as u64 + *d as u64;
                let left = (self.n_src as u64 * self.n_dst as u64).saturating_sub(scanned);
                if *skip_self {
                    // Up to one diagonal element may be skipped per
                    // remaining source row.
                    let diag = (self.n_src - s).min(self.n_dst) as u64;
                    (to_usize(left.saturating_sub(diag)), Some(to_usize(left)))
                } else {
                    (to_usize(left), Some(to_usize(left)))
                }
            }
            IterState::Bernoulli { cursor, total, .. } => {
                (0, Some(to_usize(total.saturating_sub(*cursor))))
            }
            IterState::FanOut { k, next_s, j, .. } => {
                if *k == 0 {
                    return (0, Some(0));
                }
                let undealt = (self.n_src as u64).saturating_sub(*next_s as u64);
                let current = if *j < *k { (*k - *j) as u64 } else { 0 };
                let left = undealt * *k as u64 + current;
                (to_usize(left), Some(to_usize(left)))
            }
        }
    }
}

/// The whole abstract network.
#[derive(Clone, Debug, Default)]
pub struct NetworkGraph {
    pops: Vec<Population>,
    projections: Vec<Projection>,
}

impl NetworkGraph {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a population and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn population(
        &mut self,
        name: &str,
        size: u32,
        kind: NeuronKind,
        bias_na: f32,
    ) -> PopulationId {
        assert!(size > 0, "population must have at least one neuron");
        self.pops.push(Population {
            name: name.to_string(),
            size,
            kind,
            bias_na,
        });
        PopulationId(self.pops.len() - 1)
    }

    /// Adds a projection.
    ///
    /// # Panics
    ///
    /// Panics if the populations do not exist, or if a one-to-one
    /// connector joins differently sized populations.
    pub fn project(
        &mut self,
        src: PopulationId,
        dst: PopulationId,
        connector: Connector,
        synapses: Synapses,
        seed: u64,
    ) {
        assert!(src.0 < self.pops.len() && dst.0 < self.pops.len());
        if matches!(connector, Connector::OneToOne) {
            assert_eq!(
                self.pops[src.0].size, self.pops[dst.0].size,
                "one-to-one needs equal population sizes"
            );
        }
        self.projections.push(Projection {
            src,
            dst,
            connector,
            synapses,
            seed,
        });
    }

    /// The populations, in creation order.
    pub fn populations(&self) -> &[Population] {
        &self.pops
    }

    /// A population by id.
    pub fn pop(&self, id: PopulationId) -> &Population {
        &self.pops[id.0]
    }

    /// The projections.
    pub fn projections(&self) -> &[Projection] {
        &self.projections
    }

    /// Total neuron count.
    pub fn total_neurons(&self) -> u64 {
        self.pops.iter().map(|p| p.size as u64).sum()
    }

    /// Ids of populations that `src` projects to (deduplicated).
    pub fn targets_of(&self, src: PopulationId) -> Vec<PopulationId> {
        let mut v: Vec<PopulationId> = self
            .projections
            .iter()
            .filter(|p| p.src == src)
            .map(|p| p.dst)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind() -> NeuronKind {
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
    }

    #[test]
    fn build_network() {
        let mut net = NetworkGraph::new();
        let a = net.population("a", 10, kind(), 0.0);
        let b = net.population("b", 20, kind(), 1.0);
        net.project(
            a,
            b,
            Connector::AllToAll { allow_self: true },
            Synapses::constant(10, 1),
            0,
        );
        assert_eq!(net.populations().len(), 2);
        assert_eq!(net.total_neurons(), 30);
        assert_eq!(net.pop(b).size, 20);
        assert_eq!(net.targets_of(a), vec![b]);
        assert!(net.targets_of(b).is_empty());
    }

    #[test]
    fn one_to_one_pairs() {
        let p = Projection {
            src: PopulationId(0),
            dst: PopulationId(1),
            connector: Connector::OneToOne,
            synapses: Synapses::constant(1, 1),
            seed: 0,
        };
        assert_eq!(p.pairs(3, 3), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn all_to_all_excludes_self_when_recurrent() {
        let p = Projection {
            src: PopulationId(0),
            dst: PopulationId(0),
            connector: Connector::AllToAll { allow_self: false },
            synapses: Synapses::constant(1, 1),
            seed: 0,
        };
        let pairs = p.pairs(4, 4);
        assert_eq!(pairs.len(), 12);
        assert!(pairs.iter().all(|&(s, d)| s != d));
    }

    #[test]
    fn fixed_probability_density_and_determinism() {
        let p = Projection {
            src: PopulationId(0),
            dst: PopulationId(1),
            connector: Connector::FixedProbability(0.25),
            synapses: Synapses::constant(1, 1),
            seed: 77,
        };
        let a = p.pairs(100, 100);
        let b = p.pairs(100, 100);
        assert_eq!(a, b, "expansion must be deterministic");
        let density = a.len() as f64 / 10_000.0;
        assert!((0.2..0.3).contains(&density), "density {density}");
    }

    #[test]
    fn fixed_fan_out_exact_and_distinct() {
        let p = Projection {
            src: PopulationId(0),
            dst: PopulationId(1),
            connector: Connector::FixedFanOut(5),
            synapses: Synapses::constant(1, 1),
            seed: 3,
        };
        let pairs = p.pairs(10, 50);
        assert_eq!(pairs.len(), 50);
        for s in 0..10u32 {
            let mut t: Vec<u32> = pairs
                .iter()
                .filter(|&&(a, _)| a == s)
                .map(|&(_, d)| d)
                .collect();
            assert_eq!(t.len(), 5);
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 5, "targets must be distinct");
        }
    }

    #[test]
    fn synapse_sampling_within_bounds() {
        let s = Synapses::uniform((-100, 200), (2, 9));
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..1000 {
            let (w, d) = s.sample(&mut rng);
            assert!((-100..=200).contains(&w));
            assert!((2..=9).contains(&d));
        }
        let c = Synapses::constant(55, 4);
        assert_eq!(c.sample(&mut rng), (55, 4));
    }

    #[test]
    fn streaming_iter_matches_materialized_pairs() {
        for (connector, sizes) in [
            (Connector::OneToOne, (64u32, 64u32)),
            (Connector::AllToAll { allow_self: false }, (20, 20)),
            (Connector::AllToAll { allow_self: true }, (13, 29)),
            (Connector::FixedProbability(0.3), (40, 50)),
            (Connector::FixedFanOut(7), (25, 30)),
        ] {
            let p = Projection {
                src: PopulationId(0),
                dst: PopulationId(0),
                connector,
                synapses: Synapses::constant(1, 1),
                seed: 99,
            };
            let streamed: Vec<_> = p.iter(sizes.0, sizes.1).collect();
            assert_eq!(streamed, p.pairs(sizes.0, sizes.1), "{connector:?}");
            // Sources ascend (the streaming loader relies on it).
            assert!(streamed.windows(2).all(|w| w[0].0 <= w[1].0));
            let (lo, hi) = p.iter(sizes.0, sizes.1).size_hint();
            assert!(lo <= streamed.len());
            assert!(streamed.len() <= hi.unwrap());
        }
    }

    /// Regression: the materializing expansion computed
    /// `n_src * n_dst` in `u32`, which wraps for populations ≥ 2^16
    /// (e.g. 70k x 70k ⇒ capacity 605M instead of 4.9G). The checked
    /// math lives in the iterator's `size_hint` now.
    #[test]
    fn size_hint_survives_u32_overflow() {
        let p = |connector| Projection {
            src: PopulationId(0),
            dst: PopulationId(1),
            connector,
            synapses: Synapses::constant(1, 1),
            seed: 0,
        };
        let n = 70_000u32; // n * n overflows u32
        let all = p(Connector::AllToAll { allow_self: true });
        let (lo, hi) = all.iter(n, n).size_hint();
        assert_eq!(lo as u64, n as u64 * n as u64);
        assert_eq!(hi.unwrap() as u64, n as u64 * n as u64);
        // FixedFanOut's capacity math (`n_src * k`) wrapped too.
        let fan = p(Connector::FixedFanOut(70_000));
        let (lo, hi) = fan.iter(70_000, 100_000).size_hint();
        assert_eq!(lo as u64, 70_000u64 * 70_000);
        assert_eq!(hi.unwrap(), lo);
        // Bernoulli's upper bound covers the full flattened space.
        let prob = p(Connector::FixedProbability(0.5));
        let (_, hi) = prob.iter(n, n).size_hint();
        assert_eq!(hi.unwrap() as u64, n as u64 * n as u64);
    }

    #[test]
    fn bernoulli_streaming_draws_o_edges_not_o_pairs() {
        // A sparse expansion over a huge index space must terminate
        // quickly: 200k x 200k pairs at p = 1e-9 is ~40 expected edges.
        let p = Projection {
            src: PopulationId(0),
            dst: PopulationId(1),
            connector: Connector::FixedProbability(1e-9),
            synapses: Synapses::constant(1, 1),
            seed: 5,
        };
        let edges: Vec<_> = p.iter(200_000, 200_000).collect();
        assert!(edges.len() < 1000, "{}", edges.len());
        for &(s, d) in &edges {
            assert!(s < 200_000 && d < 200_000);
        }
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
    }

    /// Regression: `(1.0 - p).ln()` rounds to 0 for p below ~1.1e-16,
    /// which made every gap collapse to 1 — inverting an ultra-sparse
    /// projection into all-to-all. `ln_1p` keeps the denominator
    /// finite.
    #[test]
    fn subepsilon_probability_stays_sparse() {
        let p = Projection {
            src: PopulationId(0),
            dst: PopulationId(1),
            connector: Connector::FixedProbability(1e-17),
            synapses: Synapses::constant(1, 1),
            seed: 7,
        };
        // 10,000 pairs at p = 1e-17: expected edges ~1e-13, i.e. none.
        assert_eq!(p.iter(100, 100).count(), 0);
        // And far below epsilon the skip computation saturates instead
        // of overflowing (`+ 1` on a saturated u64 panicked in debug).
        for seed in 0..64 {
            let p = Projection {
                connector: Connector::FixedProbability(1e-300),
                seed,
                ..p.clone()
            };
            assert_eq!(p.iter(100, 100).count(), 0, "seed {seed}");
        }
    }

    #[test]
    fn degenerate_connectors_yield_nothing() {
        let p = |connector| Projection {
            src: PopulationId(0),
            dst: PopulationId(1),
            connector,
            synapses: Synapses::constant(1, 1),
            seed: 1,
        };
        assert_eq!(p(Connector::FixedProbability(0.0)).pairs(50, 50), vec![]);
        assert_eq!(p(Connector::FixedFanOut(0)).pairs(50, 50), vec![]);
        assert_eq!(
            p(Connector::FixedProbability(1.0)).pairs(3, 2).len(),
            6,
            "p = 1 degenerates to all-to-all"
        );
    }

    #[test]
    #[should_panic(expected = "equal population sizes")]
    fn one_to_one_size_mismatch_rejected() {
        let mut net = NetworkGraph::new();
        let a = net.population("a", 3, kind(), 0.0);
        let b = net.population("b", 4, kind(), 0.0);
        net.project(a, b, Connector::OneToOne, Synapses::constant(1, 1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one neuron")]
    fn empty_population_rejected() {
        NetworkGraph::new().population("x", 0, kind(), 0.0);
    }
}
