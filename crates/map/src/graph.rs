//! The abstract neural network: populations, projections, connectors.

use spinn_neuron::izhikevich::IzhikevichParams;
use spinn_neuron::lif::LifParams;
use spinn_sim::Xoshiro256;

/// Identifies a population within a [`NetworkGraph`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PopulationId(pub(crate) usize);

impl PopulationId {
    /// The population's index in creation order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Which point-neuron model a population runs.
#[derive(Copy, Clone, Debug)]
pub enum NeuronKind {
    /// Izhikevich with the given parameters.
    Izhikevich(IzhikevichParams),
    /// Leaky integrate-and-fire with the given parameters.
    Lif(LifParams),
}

/// One population of identical neurons.
#[derive(Clone, Debug)]
pub struct Population {
    /// Human-readable name.
    pub name: String,
    /// Number of neurons.
    pub size: u32,
    /// Neuron model.
    pub kind: NeuronKind,
    /// Constant bias current, nA (stands in for background input).
    pub bias_na: f32,
}

/// Connection pattern of a projection.
#[derive(Copy, Clone, Debug)]
pub enum Connector {
    /// Neuron `i` connects to neuron `i` (requires equal sizes).
    OneToOne,
    /// Every source to every target; self-connections allowed only when
    /// the flag is set (relevant for recurrent projections).
    AllToAll {
        /// Include `i -> i` when source and target populations coincide.
        allow_self: bool,
    },
    /// Every pair connects independently with this probability.
    FixedProbability(f64),
    /// Every source neuron connects to exactly this many distinct,
    /// uniformly chosen targets.
    FixedFanOut(u32),
}

/// Weight/delay specification of a projection's synapses.
#[derive(Copy, Clone, Debug)]
pub struct Synapses {
    /// Minimum weight, 8.8 fixed point (negative = inhibitory).
    pub weight_min_raw: i16,
    /// Maximum weight, 8.8 fixed point.
    pub weight_max_raw: i16,
    /// Minimum delay, ms (1–16).
    pub delay_min_ms: u8,
    /// Maximum delay, ms (1–16).
    pub delay_max_ms: u8,
}

impl Synapses {
    /// Constant weight and delay.
    pub fn constant(weight_raw: i16, delay_ms: u8) -> Self {
        Synapses {
            weight_min_raw: weight_raw,
            weight_max_raw: weight_raw,
            delay_min_ms: delay_ms,
            delay_max_ms: delay_ms,
        }
    }

    /// Uniformly distributed weight and delay.
    ///
    /// # Panics
    ///
    /// Panics if ranges are inverted or delays are outside 1–16 ms.
    pub fn uniform(weight_raw: (i16, i16), delay_ms: (u8, u8)) -> Self {
        assert!(weight_raw.0 <= weight_raw.1, "weight range inverted");
        assert!(delay_ms.0 <= delay_ms.1, "delay range inverted");
        assert!(
            (1..=16).contains(&delay_ms.0) && delay_ms.1 <= 16,
            "delays must lie in 1..=16 ms"
        );
        Synapses {
            weight_min_raw: weight_raw.0,
            weight_max_raw: weight_raw.1,
            delay_min_ms: delay_ms.0,
            delay_max_ms: delay_ms.1,
        }
    }

    /// Draws a concrete (weight, delay) pair.
    pub fn sample(&self, rng: &mut Xoshiro256) -> (i16, u8) {
        let w = if self.weight_min_raw == self.weight_max_raw {
            self.weight_min_raw
        } else {
            let span = (self.weight_max_raw as i32 - self.weight_min_raw as i32 + 1) as u64;
            (self.weight_min_raw as i32 + rng.gen_range_u64(span) as i32) as i16
        };
        let d = if self.delay_min_ms == self.delay_max_ms {
            self.delay_min_ms
        } else {
            let span = (self.delay_max_ms - self.delay_min_ms + 1) as u64;
            self.delay_min_ms + rng.gen_range_u64(span) as u8
        };
        (w, d)
    }
}

/// One projection between populations.
#[derive(Clone, Debug)]
pub struct Projection {
    /// Source population.
    pub src: PopulationId,
    /// Target population.
    pub dst: PopulationId,
    /// Connection pattern.
    pub connector: Connector,
    /// Synapse parameters.
    pub synapses: Synapses,
    /// Expansion seed (same seed = same concrete connectivity).
    pub seed: u64,
}

impl Projection {
    /// Expands the projection into concrete `(src, dst)` neuron pairs,
    /// deterministically from the seed.
    pub fn pairs(&self, n_src: u32, n_dst: u32) -> Vec<(u32, u32)> {
        let mut rng = Xoshiro256::seed_from_u64(self.seed ^ 0x50C1_A11E);
        match self.connector {
            Connector::OneToOne => (0..n_src.min(n_dst)).map(|i| (i, i)).collect(),
            Connector::AllToAll { allow_self } => {
                let mut v = Vec::with_capacity((n_src * n_dst) as usize);
                for s in 0..n_src {
                    for d in 0..n_dst {
                        if allow_self || self.src != self.dst || s != d {
                            v.push((s, d));
                        }
                    }
                }
                v
            }
            Connector::FixedProbability(p) => {
                let mut v = Vec::new();
                for s in 0..n_src {
                    for d in 0..n_dst {
                        if rng.gen_bool(p) {
                            v.push((s, d));
                        }
                    }
                }
                v
            }
            Connector::FixedFanOut(k) => {
                let k = k.min(n_dst);
                let mut v = Vec::with_capacity((n_src * k) as usize);
                let mut targets: Vec<u32> = (0..n_dst).collect();
                for s in 0..n_src {
                    rng.shuffle(&mut targets);
                    for &d in targets.iter().take(k as usize) {
                        v.push((s, d));
                    }
                }
                v
            }
        }
    }
}

/// The whole abstract network.
#[derive(Clone, Debug, Default)]
pub struct NetworkGraph {
    pops: Vec<Population>,
    projections: Vec<Projection>,
}

impl NetworkGraph {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a population and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn population(
        &mut self,
        name: &str,
        size: u32,
        kind: NeuronKind,
        bias_na: f32,
    ) -> PopulationId {
        assert!(size > 0, "population must have at least one neuron");
        self.pops.push(Population {
            name: name.to_string(),
            size,
            kind,
            bias_na,
        });
        PopulationId(self.pops.len() - 1)
    }

    /// Adds a projection.
    ///
    /// # Panics
    ///
    /// Panics if the populations do not exist, or if a one-to-one
    /// connector joins differently sized populations.
    pub fn project(
        &mut self,
        src: PopulationId,
        dst: PopulationId,
        connector: Connector,
        synapses: Synapses,
        seed: u64,
    ) {
        assert!(src.0 < self.pops.len() && dst.0 < self.pops.len());
        if matches!(connector, Connector::OneToOne) {
            assert_eq!(
                self.pops[src.0].size, self.pops[dst.0].size,
                "one-to-one needs equal population sizes"
            );
        }
        self.projections.push(Projection {
            src,
            dst,
            connector,
            synapses,
            seed,
        });
    }

    /// The populations, in creation order.
    pub fn populations(&self) -> &[Population] {
        &self.pops
    }

    /// A population by id.
    pub fn pop(&self, id: PopulationId) -> &Population {
        &self.pops[id.0]
    }

    /// The projections.
    pub fn projections(&self) -> &[Projection] {
        &self.projections
    }

    /// Total neuron count.
    pub fn total_neurons(&self) -> u64 {
        self.pops.iter().map(|p| p.size as u64).sum()
    }

    /// Ids of populations that `src` projects to (deduplicated).
    pub fn targets_of(&self, src: PopulationId) -> Vec<PopulationId> {
        let mut v: Vec<PopulationId> = self
            .projections
            .iter()
            .filter(|p| p.src == src)
            .map(|p| p.dst)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind() -> NeuronKind {
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
    }

    #[test]
    fn build_network() {
        let mut net = NetworkGraph::new();
        let a = net.population("a", 10, kind(), 0.0);
        let b = net.population("b", 20, kind(), 1.0);
        net.project(
            a,
            b,
            Connector::AllToAll { allow_self: true },
            Synapses::constant(10, 1),
            0,
        );
        assert_eq!(net.populations().len(), 2);
        assert_eq!(net.total_neurons(), 30);
        assert_eq!(net.pop(b).size, 20);
        assert_eq!(net.targets_of(a), vec![b]);
        assert!(net.targets_of(b).is_empty());
    }

    #[test]
    fn one_to_one_pairs() {
        let p = Projection {
            src: PopulationId(0),
            dst: PopulationId(1),
            connector: Connector::OneToOne,
            synapses: Synapses::constant(1, 1),
            seed: 0,
        };
        assert_eq!(p.pairs(3, 3), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn all_to_all_excludes_self_when_recurrent() {
        let p = Projection {
            src: PopulationId(0),
            dst: PopulationId(0),
            connector: Connector::AllToAll { allow_self: false },
            synapses: Synapses::constant(1, 1),
            seed: 0,
        };
        let pairs = p.pairs(4, 4);
        assert_eq!(pairs.len(), 12);
        assert!(pairs.iter().all(|&(s, d)| s != d));
    }

    #[test]
    fn fixed_probability_density_and_determinism() {
        let p = Projection {
            src: PopulationId(0),
            dst: PopulationId(1),
            connector: Connector::FixedProbability(0.25),
            synapses: Synapses::constant(1, 1),
            seed: 77,
        };
        let a = p.pairs(100, 100);
        let b = p.pairs(100, 100);
        assert_eq!(a, b, "expansion must be deterministic");
        let density = a.len() as f64 / 10_000.0;
        assert!((0.2..0.3).contains(&density), "density {density}");
    }

    #[test]
    fn fixed_fan_out_exact_and_distinct() {
        let p = Projection {
            src: PopulationId(0),
            dst: PopulationId(1),
            connector: Connector::FixedFanOut(5),
            synapses: Synapses::constant(1, 1),
            seed: 3,
        };
        let pairs = p.pairs(10, 50);
        assert_eq!(pairs.len(), 50);
        for s in 0..10u32 {
            let mut t: Vec<u32> = pairs
                .iter()
                .filter(|&&(a, _)| a == s)
                .map(|&(_, d)| d)
                .collect();
            assert_eq!(t.len(), 5);
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 5, "targets must be distinct");
        }
    }

    #[test]
    fn synapse_sampling_within_bounds() {
        let s = Synapses::uniform((-100, 200), (2, 9));
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..1000 {
            let (w, d) = s.sample(&mut rng);
            assert!((-100..=200).contains(&w));
            assert!((2..=9).contains(&d));
        }
        let c = Synapses::constant(55, 4);
        assert_eq!(c.sample(&mut rng), (55, 4));
    }

    #[test]
    #[should_panic(expected = "equal population sizes")]
    fn one_to_one_size_mismatch_rejected() {
        let mut net = NetworkGraph::new();
        let a = net.population("a", 3, kind(), 0.0);
        let b = net.population("b", 4, kind(), 0.0);
        net.project(a, b, Connector::OneToOne, Synapses::constant(1, 1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one neuron")]
    fn empty_population_rejected() {
        NetworkGraph::new().population("x", 0, kind(), 0.0);
    }
}
