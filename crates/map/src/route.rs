//! Multicast-tree construction and routing-table generation.
//!
//! For every placed source core a **shortest-path tree** is grown over
//! the hex torus from the source chip to every chip holding target
//! neurons: destinations are attached in order of increasing distance,
//! grafting the shortest-path suffix onto the existing tree, so every
//! tree chip has exactly one parent (packets are never duplicated).
//!
//! Table emission then exploits the router's **default routing** (§5.2):
//! a chip where the packet simply continues straight (single output
//! link opposite the arrival port, no local deliveries) needs *no* CAM
//! entry at all — the mapper only spends entries on bends, branches and
//! endpoints, which is what makes the 1024-entry CAM sufficient.
//!
//! [`RoutingPlan::minimized`] compresses the emitted tables further by
//! merging same-chip entries whose routes agree into wider masked
//! entries (see [`crate::minimize`]), and
//! [`RoutingPlan::verify_against`] replays every source through two
//! plans to prove they deliver identically.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use spinn_noc::direction::Direction;
use spinn_noc::fabric::Fabric;
use spinn_noc::mesh::{NodeCoord, Torus};
use spinn_noc::table::{McTableEntry, RouteSet, TableFull};

use crate::graph::NetworkGraph;
use crate::keys::{core_key_mask, NEURON_BITS};
use crate::minimize::{minimize_chip, ChipContext};
use crate::place::Placement;

/// Per-plan statistics.
#[derive(Clone, Debug, Default)]
pub struct RouteStats {
    /// Multicast trees built (one per source core with targets).
    pub trees: usize,
    /// CAM entries emitted over all chips.
    pub total_entries: usize,
    /// Entries saved by default-route elision.
    pub elided_entries: usize,
    /// Total tree edges (inter-chip link traversals per one spike from
    /// every source core — the traffic cost metric of E8/E10).
    pub total_edges: u64,
    /// Largest table on any single chip.
    pub max_entries_per_chip: usize,
    /// Sum over (tree, destination) of the tree-path length, for mean
    /// path computations.
    pub total_path_len: u64,
    /// Number of (tree, destination chip) pairs.
    pub total_dests: u64,
    /// CAM entries before minimization (0 for an unminimized plan; set
    /// by [`RoutingPlan::minimized`], whose `total_entries` then counts
    /// the compressed tables).
    pub pre_minimize_entries: usize,
}

impl RouteStats {
    /// Mean source→destination path length over all trees.
    pub fn mean_path_len(&self) -> f64 {
        if self.total_dests == 0 {
            0.0
        } else {
            self.total_path_len as f64 / self.total_dests as f64
        }
    }
}

/// The routing tables for every chip, plus statistics.
#[derive(Clone, Debug)]
pub struct RoutingPlan {
    tables: Vec<Vec<McTableEntry>>,
    stats: RouteStats,
    width: u32,
    height: u32,
    /// Per chip: key blocks whose trees traverse it (sorted) — the
    /// blocks minimization must not capture with a foreign route.
    traversals: Vec<Vec<u32>>,
    /// Allocated population key spans (the live key universe).
    spans: Vec<(u32, u32)>,
    /// One `(source chip id, key block)` per tree, for replay checks.
    sources: Vec<(usize, u32)>,
}

impl RoutingPlan {
    /// Builds the plan for a placed network (with default-route elision).
    pub fn build(net: &NetworkGraph, placement: &Placement, width: u32, height: u32) -> Self {
        Self::build_with_options(net, placement, width, height, true)
    }

    /// Builds the plan, optionally disabling default-route elision (the
    /// ablation knob: how many CAM entries does the default-routing trick
    /// actually save?).
    pub fn build_with_options(
        net: &NetworkGraph,
        placement: &Placement,
        width: u32,
        height: u32,
        elide: bool,
    ) -> Self {
        Self::build_inner(net, placement, width, height, elide, &HashSet::new())
    }

    /// Builds the plan for the same placed network while routing every
    /// multicast tree around `avoid` — the currently failed links as
    /// `(dense chip id, outgoing direction)` pairs, both cable ends, as
    /// returned by `Fabric::failed_links`. Tree paths that never touch
    /// an avoided link are grown exactly as [`RoutingPlan::build`]
    /// grows them, so the repair is regional: unaffected trees keep
    /// their original tables entry-for-entry. Paths that do cross a
    /// failed link are replaced by deterministic breadth-first detours;
    /// a destination the avoided links disconnect entirely falls back
    /// to the direct path (that route stays broken until the cable is
    /// repaired — emergency routing still gets a shot at it).
    pub fn build_avoiding(
        net: &NetworkGraph,
        placement: &Placement,
        width: u32,
        height: u32,
        avoid: &[(u32, Direction)],
    ) -> Self {
        let avoid: HashSet<(usize, Direction)> =
            avoid.iter().map(|&(c, d)| (c as usize, d)).collect();
        Self::build_inner(net, placement, width, height, true, &avoid)
    }

    fn build_inner(
        net: &NetworkGraph,
        placement: &Placement,
        width: u32,
        height: u32,
        elide: bool,
        avoid: &HashSet<(usize, Direction)>,
    ) -> Self {
        let torus = Torus::new(width, height);
        let mut tables: Vec<Vec<McTableEntry>> = vec![Vec::new(); torus.len()];
        let mut stats = RouteStats::default();
        let mut traversals: Vec<Vec<u32>> = vec![Vec::new(); torus.len()];
        let mut sources: Vec<(usize, u32)> = Vec::new();

        for slice in placement.slices() {
            // Destination cores: every slice of every population this
            // population projects to.
            let mut dest_cores: HashMap<usize, u32> = HashMap::new(); // chip id -> core mask
            for dst_pop in net.targets_of(slice.pop) {
                for d in placement.slices_of(dst_pop) {
                    let chip = torus.id_of(d.chip);
                    *dest_cores.entry(chip).or_insert(0) |= 1 << d.core;
                }
            }
            if dest_cores.is_empty() {
                continue;
            }
            stats.trees += 1;
            let src_chip = torus.id_of(slice.chip);
            let tree = grow_tree_avoiding(
                &torus,
                src_chip,
                dest_cores.keys().copied(),
                &mut stats,
                avoid,
            );
            sources.push((src_chip, slice.global_core));
            for &chip in tree.keys() {
                traversals[chip].push(slice.global_core);
            }
            emit_tables(
                &torus,
                src_chip,
                &tree,
                &dest_cores,
                slice.global_core,
                &mut tables,
                &mut stats,
                elide,
            );
        }
        for t in &tables {
            stats.max_entries_per_chip = stats.max_entries_per_chip.max(t.len());
        }
        stats.total_entries = tables.iter().map(|t| t.len()).sum();
        for t in &mut traversals {
            t.sort_unstable();
        }
        RoutingPlan {
            tables,
            stats,
            width,
            height,
            traversals,
            spans: placement.key_spans().to_vec(),
            sources,
        }
    }

    /// The table for one chip (by dense chip id).
    pub fn chip_table(&self, chip_id: usize) -> &[McTableEntry] {
        &self.tables[chip_id]
    }

    /// Tables for all chips.
    pub fn tables(&self) -> &[Vec<McTableEntry>] {
        &self.tables
    }

    /// Plan statistics.
    pub fn stats(&self) -> &RouteStats {
        &self.stats
    }

    /// Total CAM entries emitted.
    pub fn total_entries(&self) -> usize {
        self.stats.total_entries
    }

    /// Total tree edges (per-spike link traversals).
    pub fn total_edges(&self) -> u64 {
        self.stats.total_edges
    }

    /// Mesh dimensions the plan was built for, `(width, height)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// A compressed copy of the plan: each chip's entries merged into
    /// wider masked entries wherever their routes agree (see
    /// [`crate::minimize`]). Route behaviour is preserved exactly for
    /// every key that can traverse each chip; before/after entry counts
    /// land in [`RouteStats::pre_minimize_entries`] / `total_entries`.
    pub fn minimized(&self) -> RoutingPlan {
        let tables: Vec<Vec<McTableEntry>> = self
            .tables
            .iter()
            .enumerate()
            .map(|(chip, entries)| {
                minimize_chip(
                    entries,
                    &ChipContext {
                        barred: &self.traversals[chip],
                        spans: &self.spans,
                    },
                )
            })
            .collect();
        let mut stats = self.stats.clone();
        if stats.pre_minimize_entries == 0 {
            stats.pre_minimize_entries = self.stats.total_entries;
        }
        stats.total_entries = tables.iter().map(|t| t.len()).sum();
        stats.max_entries_per_chip = tables.iter().map(|t| t.len()).max().unwrap_or(0);
        RoutingPlan {
            tables,
            stats,
            width: self.width,
            height: self.height,
            traversals: self.traversals.clone(),
            spans: self.spans.clone(),
            sources: self.sources.clone(),
        }
    }

    /// Replays one packet from every source core through this plan's
    /// tables and `other`'s, and counts the sources whose delivered
    /// `(chip, core)` sets differ (or that loop / come up unroutable in
    /// either plan). 0 means the two plans are route-equivalent.
    pub fn verify_against(&self, other: &RoutingPlan) -> usize {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "plans cover different meshes"
        );
        let torus = Torus::new(self.width, self.height);
        let mut violations = 0;
        for &(chip, block) in &self.sources {
            let key = block << NEURON_BITS;
            let a = walk_key(&self.tables, &torus, chip, key);
            let b = walk_key(&other.tables, &torus, chip, key);
            if a.is_none() || a != b {
                violations += 1;
            }
        }
        violations
    }

    /// Loads every chip's table into a fabric's routers through the
    /// fallible CAM path — the one table-install loop the examples,
    /// tests and the simulation builder all share.
    ///
    /// # Errors
    ///
    /// Returns [`TableFull`] as soon as any router's CAM capacity is
    /// exceeded (tables already installed stay installed).
    ///
    /// # Panics
    ///
    /// Panics if the fabric's mesh does not match the plan's.
    pub fn install_into(&self, fabric: &mut Fabric) -> Result<usize, TableFull> {
        assert_eq!(
            (fabric.config().width, fabric.config().height),
            (self.width, self.height),
            "plan does not match the fabric's mesh"
        );
        let mut installed = 0;
        for (chip_id, entries) in self.tables.iter().enumerate() {
            let coord = fabric.torus().coord_of(chip_id);
            let router = fabric.router_mut(coord);
            for &e in entries {
                router.table.insert(e)?;
                installed += 1;
            }
        }
        Ok(installed)
    }

    /// Replaces every router's table with this plan's: clears each CAM
    /// (version-bumped, so compiled lookup caches refresh) before
    /// installing through the same fallible path as
    /// [`RoutingPlan::install_into`]. This is the live-repair hot-swap:
    /// it is safe to call on a running machine between events because
    /// in-flight packets re-resolve their route at every chip.
    ///
    /// # Errors
    ///
    /// Returns [`TableFull`] if any router's CAM capacity is exceeded;
    /// chips already processed keep the new tables, so callers should
    /// treat an error as fatal for the session.
    ///
    /// # Panics
    ///
    /// Panics if the fabric's mesh does not match the plan's.
    pub fn reinstall_into(&self, fabric: &mut Fabric) -> Result<usize, TableFull> {
        assert_eq!(
            (fabric.config().width, fabric.config().height),
            (self.width, self.height),
            "plan does not match the fabric's mesh"
        );
        for chip_id in 0..self.tables.len() {
            let coord = fabric.torus().coord_of(chip_id);
            fabric.router_mut(coord).table.clear();
        }
        self.install_into(fabric)
    }
}

/// First-match lookup over a raw entry list.
fn entries_lookup(entries: &[McTableEntry], key: u32) -> Option<RouteSet> {
    entries.iter().find(|e| e.matches(key)).map(|e| e.route)
}

/// Walks one key from its source chip through per-chip tables, applying
/// default routing where no entry matches, and returns the delivered
/// core mask per chip — or `None` if the key loops or is unroutable at
/// its source.
fn walk_key(
    tables: &[Vec<McTableEntry>],
    torus: &Torus,
    src: usize,
    key: u32,
) -> Option<BTreeMap<usize, u32>> {
    let mut deliveries: BTreeMap<usize, u32> = BTreeMap::new();
    // (chip, direction of travel; None when locally injected).
    let mut stack: Vec<(usize, Option<Direction>)> = vec![(src, None)];
    let budget = tables.len() * 8 + 16;
    let mut steps = 0;
    while let Some((chip, travel)) = stack.pop() {
        steps += 1;
        if steps > budget {
            return None; // routing loop
        }
        let onward = |d: Direction| {
            (
                torus.id_of(torus.neighbour(torus.coord_of(chip), d)),
                Some(d),
            )
        };
        match entries_lookup(&tables[chip], key) {
            Some(route) => {
                if route.core_mask() != 0 {
                    *deliveries.entry(chip).or_default() |= route.core_mask();
                }
                stack.extend(route.links().map(onward));
            }
            // Default routing continues straight; a locally injected
            // packet with no entry is unroutable.
            None => match travel {
                Some(d) => stack.push(onward(d)),
                None => return None,
            },
        }
    }
    Some(deliveries)
}

/// Cost of reaching a destination set from one source, three ways: the
/// multicast tree, per-destination unicast, and whole-machine broadcast
/// (the E8 comparison — "we employ a packet-switched multicast mechanism
/// to reduce total communication loading").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TreeCost {
    /// Link traversals per spike using the multicast tree.
    pub multicast_edges: u64,
    /// Link traversals per spike sending one copy per destination.
    pub unicast_edges: u64,
    /// Link traversals per spike broadcasting to every chip (bus-style
    /// AER emulated on the mesh: a spanning tree of the whole machine).
    pub broadcast_edges: u64,
}

/// Computes the E8 cost comparison for one source and destination set.
pub fn tree_cost(
    torus: &Torus,
    src: NodeCoord,
    dests: impl IntoIterator<Item = NodeCoord>,
) -> TreeCost {
    let mut stats = RouteStats::default();
    let src_id = torus.id_of(src);
    let dests: Vec<usize> = dests.into_iter().map(|d| torus.id_of(d)).collect();
    let unicast_edges: u64 = dests
        .iter()
        .map(|&d| torus.hex_distance(src, torus.coord_of(d)))
        .sum();
    let tree = grow_tree(torus, src_id, dests.into_iter(), &mut stats);
    let _ = tree;
    TreeCost {
        multicast_edges: stats.total_edges,
        unicast_edges,
        broadcast_edges: torus.len() as u64 - 1,
    }
}

/// A tree node's record: parent direction (how packets *arrive*) and the
/// set of outgoing links.
#[derive(Clone, Debug, Default)]
struct TreeNode {
    /// Direction of the edge from the parent into this chip, as seen
    /// from the parent (i.e. the hop direction). None for the root.
    in_hop: Option<Direction>,
    out: Vec<Direction>,
    depth: u64,
}

/// Grows the multicast tree: destinations attached in **canonical**
/// (chip-id) order, the first via the shortest path from the source and
/// every later one grafted from the nearest chip of the destination
/// *suffix structure* grown so far (never from the source path).
///
/// The suffix structure — first destination, later destinations and the
/// paths connecting them — therefore depends only on the destination
/// set, not on the source. Sibling slices of one population share their
/// destination set, so their trees agree chip-for-chip everywhere past
/// the first destination: identical routes that
/// [`RoutingPlan::minimized`] collapses into one shared entry per chip.
fn grow_tree(
    torus: &Torus,
    src: usize,
    dests: impl Iterator<Item = usize>,
    stats: &mut RouteStats,
) -> HashMap<usize, TreeNode> {
    grow_tree_avoiding(torus, src, dests, stats, &HashSet::new())
}

/// [`grow_tree`] with an avoid set: graft paths that would cross an
/// avoided link are re-planned as breadth-first detours (see
/// [`plan_path`]); with an empty set the two are identical.
fn grow_tree_avoiding(
    torus: &Torus,
    src: usize,
    dests: impl Iterator<Item = usize>,
    stats: &mut RouteStats,
    avoid: &HashSet<(usize, Direction)>,
) -> HashMap<usize, TreeNode> {
    let mut tree: HashMap<usize, TreeNode> = HashMap::new();
    tree.insert(src, TreeNode::default());
    let mut dests: Vec<usize> = dests.collect();
    dests.sort_unstable();
    // Chips of the source-independent suffix structure.
    let mut suffix: Vec<usize> = Vec::new();
    for dest in dests {
        if tree.contains_key(&dest) {
            stats.total_dests += 1;
            stats.total_path_len += tree[&dest].depth;
            if !suffix.contains(&dest) {
                suffix.push(dest);
            }
            continue;
        }
        // Graft from the nearest suffix chip (the source itself for the
        // first destination), then walk the greedy path towards `dest`.
        let dc = torus.coord_of(dest);
        let attach = suffix
            .iter()
            .copied()
            .min_by_key(|&c| (torus.hex_distance(torus.coord_of(c), dc), tree[&c].depth, c))
            .unwrap_or(src);
        // The path from the graft point; it may cross chips that are
        // already on the tree (the source path, say), in which case
        // only the segment after the last crossing is added — every
        // chip keeps exactly one parent.
        let path = plan_path(torus, attach, dest, avoid);
        let start = (0..path.len())
            .rev()
            .find(|&i| tree.contains_key(&path[i].0))
            .expect("graft point is on the tree");
        for w in path[start..].windows(2) {
            let ((cur, hop), (next, _)) = (w[0], w[1]);
            let hop = hop.expect("interior path chip has a hop");
            let depth = tree[&cur].depth + 1;
            let cur_node = tree.get_mut(&cur).expect("on tree");
            if !cur_node.out.contains(&hop) {
                cur_node.out.push(hop);
            }
            stats.total_edges += 1;
            tree.entry(next).or_insert(TreeNode {
                in_hop: Some(hop),
                out: Vec::new(),
                depth,
            });
        }
        // The graft path joins the suffix structure; the first
        // destination's source path does not (it is source-specific —
        // only the destination itself is shared).
        let joins = if suffix.is_empty() {
            path.len() - 1
        } else {
            start
        };
        for &(c, _) in &path[joins..] {
            if !suffix.contains(&c) {
                suffix.push(c);
            }
        }
        stats.total_dests += 1;
        stats.total_path_len += tree[&dest].depth;
    }
    tree
}

/// Plans the path from `from` to `to` as `[(chip, Some(hop)), ...,
/// (to, None)]`. The greedy torus path is used verbatim whenever it
/// crosses no avoided link — keeping avoid-aware plans bit-identical to
/// [`RoutingPlan::build`] everywhere the failures don't reach — and is
/// otherwise replaced by a breadth-first detour. If the avoided links
/// disconnect the pair the greedy path is returned anyway (the broken
/// hop stays; emergency routing is the last line of defence).
fn plan_path(
    torus: &Torus,
    from: usize,
    to: usize,
    avoid: &HashSet<(usize, Direction)>,
) -> Vec<(usize, Option<Direction>)> {
    let tc = torus.coord_of(to);
    let mut path = vec![(from, None)];
    let mut cur = from;
    while cur != to {
        let hop = torus
            .p2p_next_hop(torus.coord_of(cur), tc)
            .expect("cur != to");
        path.last_mut().expect("non-empty").1 = Some(hop);
        cur = torus.id_of(torus.neighbour(torus.coord_of(cur), hop));
        path.push((cur, None));
    }
    let clean = avoid.is_empty()
        || path
            .windows(2)
            .all(|w| !avoid.contains(&(w[0].0, w[0].1.expect("interior hop"))));
    if clean {
        return path;
    }
    bfs_path(torus, from, to, avoid).unwrap_or(path)
}

/// Deterministic breadth-first shortest path that never takes an
/// avoided outgoing link. Directions are explored in index order and
/// the queue is FIFO, so ties break identically on every run and every
/// thread count. Returns `None` when `to` is unreachable.
fn bfs_path(
    torus: &Torus,
    from: usize,
    to: usize,
    avoid: &HashSet<(usize, Direction)>,
) -> Option<Vec<(usize, Option<Direction>)>> {
    let mut prev: Vec<Option<(usize, Direction)>> = vec![None; torus.len()];
    let mut seen = vec![false; torus.len()];
    seen[from] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    'search: while let Some(cur) = queue.pop_front() {
        let cc = torus.coord_of(cur);
        for d in 0..6 {
            let dir = Direction::from_index(d);
            if avoid.contains(&(cur, dir)) {
                continue;
            }
            let next = torus.id_of(torus.neighbour(cc, dir));
            if !seen[next] {
                seen[next] = true;
                prev[next] = Some((cur, dir));
                if next == to {
                    break 'search;
                }
                queue.push_back(next);
            }
        }
    }
    if !seen[to] {
        return None;
    }
    let mut rev: Vec<(usize, Option<Direction>)> = vec![(to, None)];
    let mut cur = to;
    while cur != from {
        let (p, d) = prev[cur].expect("walked from `from`");
        rev.push((p, Some(d)));
        cur = p;
    }
    rev.reverse();
    Some(rev)
}

/// Emits CAM entries for one tree, eliding pure straight-through chips
/// when `elide` is set.
#[allow(clippy::too_many_arguments)]
fn emit_tables(
    torus: &Torus,
    src: usize,
    tree: &HashMap<usize, TreeNode>,
    dest_cores: &HashMap<usize, u32>,
    global_core: u32,
    tables: &mut [Vec<McTableEntry>],
    stats: &mut RouteStats,
    elide: bool,
) {
    let (key, mask) = core_key_mask(global_core);
    for (&chip, node) in tree {
        let core_mask = dest_cores.get(&chip).copied().unwrap_or(0);
        let is_root = chip == src;
        // Default-route elision: one output continuing straight, no
        // local deliveries, not the root (locally injected packets have
        // no arrival port and always need an entry).
        if elide && !is_root && core_mask == 0 && node.out.len() == 1 {
            // The packet arrived travelling in direction `in_hop`; it
            // default-routes out of the port opposite the arrival port,
            // i.e. it keeps travelling in the same direction.
            if node.in_hop == Some(node.out[0]) {
                stats.elided_entries += 1;
                continue;
            }
        }
        // Terminal chips with no outputs and no cores should not occur,
        // but guard anyway.
        if node.out.is_empty() && core_mask == 0 {
            continue;
        }
        let mut route = RouteSet::from_bits(core_mask << 6);
        for &d in &node.out {
            route = route.with_link(d);
        }
        tables[chip].push(McTableEntry { key, mask, route });
    }
    let _ = torus;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Connector, NetworkGraph, NeuronKind, Synapses};
    use crate::place::{Placement, Placer};
    use spinn_neuron::izhikevich::IzhikevichParams;

    fn kind() -> NeuronKind {
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
    }

    fn line_net(n_pops: u32, pop_size: u32) -> NetworkGraph {
        let mut net = NetworkGraph::new();
        let pops: Vec<_> = (0..n_pops)
            .map(|i| net.population(&format!("p{i}"), pop_size, kind(), 0.0))
            .collect();
        for w in pops.windows(2) {
            net.project(
                w[0],
                w[1],
                Connector::OneToOne,
                Synapses::constant(10, 1),
                0,
            );
        }
        net
    }

    #[test]
    fn plan_covers_all_source_cores() {
        let net = line_net(4, 100);
        let placement = Placement::compute(&net, 6, 6, 17, 100, Placer::RoundRobin).unwrap();
        let plan = RoutingPlan::build(&net, &placement, 6, 6);
        // Three of the four pops have targets.
        assert_eq!(plan.stats().trees, 3);
        assert!(plan.total_entries() >= 3, "at least root entries");
    }

    #[test]
    fn tree_is_a_tree_no_duplicate_parents() {
        // Grow a tree to many destinations and verify single-parenthood
        // by construction: every chip reachable once.
        let torus = Torus::new(10, 10);
        let mut stats = RouteStats::default();
        let dests: Vec<usize> = vec![5, 17, 44, 99, 63, 12, 80];
        let tree = grow_tree(&torus, 0, dests.iter().copied(), &mut stats);
        // Edges = nodes - 1 for a tree.
        let edge_count: usize = tree.values().map(|n| n.out.len()).sum();
        assert_eq!(edge_count as u64, stats.total_edges);
        assert_eq!(edge_count, tree.len() - 1, "not a tree");
        // All destinations are in the tree.
        for d in dests {
            assert!(tree.contains_key(&d));
        }
        // Non-root nodes have a parent hop.
        for (&c, node) in &tree {
            assert_eq!(node.in_hop.is_none(), c == 0);
        }
    }

    #[test]
    fn default_route_elision_on_straight_paths() {
        // Source at (0,0), single dest far east: the intermediate chips
        // lie on a straight line and need no entries.
        let mut net = NetworkGraph::new();
        let a = net.population("a", 10, kind(), 0.0);
        let b = net.population("b", 10, kind(), 0.0);
        net.project(a, b, Connector::OneToOne, Synapses::constant(1, 1), 0);
        // Force placement: round robin on a 8x1 strip puts a at chip 0
        // and b at chip 1... instead use one core per chip so they are
        // distinct, then check elision count from stats on a long line.
        let placement = Placement::compute(&net, 8, 1, 2, 10, Placer::RoundRobin).unwrap();
        let plan = RoutingPlan::build(&net, &placement, 8, 1);
        let s = plan.stats();
        assert_eq!(s.trees, 1);
        // a at chip 0, b at chip 1: adjacent, nothing to elide; just
        // validate the structural invariant: entries = root + dest.
        assert_eq!(plan.total_entries(), 2);

        // Longer line: place b four chips east by padding populations
        // (chip 4 on an 8-wide ring is 4 hops in either direction; the
        // planner picks east deterministically).
        let mut net = NetworkGraph::new();
        let a = net.population("a", 10, kind(), 0.0);
        for i in 0..3 {
            net.population(&format!("pad{i}"), 10, kind(), 0.0);
        }
        let b = net.population("b", 10, kind(), 0.0);
        net.project(a, b, Connector::OneToOne, Synapses::constant(1, 1), 0);
        let placement = Placement::compute(&net, 8, 1, 2, 10, Placer::RoundRobin).unwrap();
        let plan = RoutingPlan::build(&net, &placement, 8, 1);
        let s = plan.stats();
        // Source chip 0 -> dest chip 4: chips 1-3 are straight-through.
        assert_eq!(s.elided_entries, 3, "{s:?}");
        assert_eq!(plan.total_entries(), 2);
    }

    #[test]
    fn local_delivery_gets_core_bits() {
        // Source and target on the same chip, different cores.
        let mut net = NetworkGraph::new();
        let a = net.population("a", 10, kind(), 0.0);
        let b = net.population("b", 10, kind(), 0.0);
        net.project(a, b, Connector::OneToOne, Synapses::constant(1, 1), 0);
        let placement = Placement::compute(&net, 2, 2, 17, 10, Placer::RoundRobin).unwrap();
        let plan = RoutingPlan::build(&net, &placement, 2, 2);
        // Both cores on chip 0: one entry, no links, one core bit.
        assert_eq!(plan.total_entries(), 1);
        let entry = &plan.chip_table(0)[0];
        assert_eq!(entry.route.links().count(), 0);
        let b_slice = placement.slices_of(b).next().unwrap();
        assert!(entry.route.has_core(b_slice.core as usize));
        assert_eq!(plan.total_edges(), 0);
    }

    #[test]
    fn random_placement_costs_more_traffic_than_locality() {
        // The E10 shape at unit-test scale.
        let net = line_net(8, 100);
        let build = |placer| {
            let placement = Placement::compute(&net, 8, 8, 3, 100, placer).unwrap();
            RoutingPlan::build(&net, &placement, 8, 8).total_edges()
        };
        let local = build(Placer::Locality);
        let random = build(Placer::Random { seed: 5 });
        assert!(
            random > local,
            "random placement should use more link-hops: {random} vs {local}"
        );
    }

    #[test]
    fn plan_is_deterministic() {
        let net = line_net(5, 80);
        let placement = Placement::compute(&net, 6, 6, 9, 80, Placer::Locality).unwrap();
        let a = RoutingPlan::build(&net, &placement, 6, 6);
        let b = RoutingPlan::build(&net, &placement, 6, 6);
        assert_eq!(a.total_entries(), b.total_entries());
        assert_eq!(a.total_edges(), b.total_edges());
        for (ta, tb) in a.tables().iter().zip(b.tables()) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn elision_ablation_saves_entries() {
        let net = line_net(6, 50);
        let placement = Placement::compute(&net, 8, 8, 2, 50, Placer::Random { seed: 2 }).unwrap();
        let with = RoutingPlan::build_with_options(&net, &placement, 8, 8, true);
        let without = RoutingPlan::build_with_options(&net, &placement, 8, 8, false);
        assert!(with.total_entries() <= without.total_entries());
        assert_eq!(
            without.total_entries(),
            with.total_entries() + with.stats().elided_entries
        );
        // Same trees either way.
        assert_eq!(with.total_edges(), without.total_edges());
    }

    #[test]
    fn mean_path_len_reported() {
        let net = line_net(4, 50);
        let placement = Placement::compute(&net, 8, 8, 2, 50, Placer::Locality).unwrap();
        let plan = RoutingPlan::build(&net, &placement, 8, 8);
        assert!(plan.stats().mean_path_len() >= 1.0);
        assert_eq!(plan.stats().total_dests, 3);
    }

    /// The dense random-placement workload of
    /// `tests/parallel_equivalence.rs`: 8 populations of 256 neurons in
    /// a synfire ring, 128 neurons per core, scattered over a 4x4 torus.
    fn dense_random_ring() -> (NetworkGraph, Placement) {
        let mut net = NetworkGraph::new();
        let pops: Vec<_> = (0..8u32)
            .map(|i| net.population(&format!("s{i}"), 256, kind(), 0.0))
            .collect();
        for (i, &src) in pops.iter().enumerate() {
            let dst = pops[(i + 1) % pops.len()];
            net.project(
                src,
                dst,
                Connector::FixedFanOut(12),
                Synapses::constant(600, 2),
                i as u64,
            );
        }
        let placement =
            Placement::compute(&net, 4, 4, 20, 128, Placer::Random { seed: 0xD15E }).unwrap();
        (net, placement)
    }

    #[test]
    fn dense_random_placement_minimizes_by_thirty_percent() {
        // The PR's acceptance bar: ≥ 30% fewer CAM entries with zero
        // route-equivalence violations on the dense random workload.
        let (net, placement) = dense_random_ring();
        let plan = RoutingPlan::build(&net, &placement, 4, 4);
        let min = plan.minimized();
        assert_eq!(plan.verify_against(&min), 0, "routes must be preserved");
        assert_eq!(min.stats().pre_minimize_entries, plan.total_entries());
        assert!(
            min.total_entries() * 10 <= plan.total_entries() * 7,
            "minimization saved too little: {} -> {}",
            plan.total_entries(),
            min.total_entries()
        );
        assert!(min.stats().max_entries_per_chip <= plan.stats().max_entries_per_chip);
    }

    #[test]
    fn minimization_is_route_exact_across_placers() {
        let net = line_net(6, 120);
        for placer in [
            Placer::Locality,
            Placer::RoundRobin,
            Placer::Random { seed: 99 },
        ] {
            let placement = Placement::compute(&net, 6, 6, 17, 64, placer).unwrap();
            let plan = RoutingPlan::build(&net, &placement, 6, 6);
            let min = plan.minimized();
            assert_eq!(plan.verify_against(&min), 0);
            assert!(min.total_entries() <= plan.total_entries());
            // Minimizing twice changes nothing further.
            let twice = min.minimized();
            assert_eq!(twice.total_entries(), min.total_entries());
            assert_eq!(twice.stats().pre_minimize_entries, plan.total_entries());
        }
    }

    #[test]
    fn sibling_slices_on_one_chip_collapse_to_one_entry() {
        // Two pops, 4 slices each, all on chip 0 (locality, plenty of
        // cores): each pop's 4 source entries share a route and aligned
        // keys, so the minimized chip-0 table is one entry per pop.
        let mut net = NetworkGraph::new();
        let a = net.population("a", 200, kind(), 0.0);
        let b = net.population("b", 200, kind(), 0.0);
        net.project(a, b, Connector::OneToOne, Synapses::constant(10, 1), 0);
        net.project(b, a, Connector::OneToOne, Synapses::constant(10, 1), 1);
        let placement = Placement::compute(&net, 4, 4, 17, 50, Placer::Locality).unwrap();
        let plan = RoutingPlan::build(&net, &placement, 4, 4);
        assert_eq!(plan.total_entries(), 8, "4 entries per pop before");
        let min = plan.minimized();
        assert_eq!(min.total_entries(), 2, "one widened entry per pop");
        assert_eq!(plan.verify_against(&min), 0);
    }

    #[test]
    fn verify_against_detects_a_broken_plan() {
        let (net, placement) = dense_random_ring();
        let plan = RoutingPlan::build(&net, &placement, 4, 4);
        let mut broken = plan.clone();
        // Corrupt one chip: drop the entries of the busiest table.
        let busiest = (0..broken.tables.len())
            .max_by_key(|&c| broken.tables[c].len())
            .unwrap();
        broken.tables[busiest].clear();
        assert!(plan.verify_against(&broken) > 0);
    }

    #[test]
    fn build_avoiding_nothing_matches_build() {
        let net = line_net(4, 100);
        let placement = Placement::compute(&net, 6, 6, 17, 100, Placer::RoundRobin).unwrap();
        let base = RoutingPlan::build(&net, &placement, 6, 6);
        let avoided = RoutingPlan::build_avoiding(&net, &placement, 6, 6, &[]);
        assert_eq!(base.total_entries(), avoided.total_entries());
        assert_eq!(base.verify_against(&avoided), 0);
    }

    #[test]
    fn bfs_path_detours_around_avoided_link() {
        let torus = Torus::new(8, 8);
        let from = torus.id_of(NodeCoord::new(0, 0));
        let to = torus.id_of(NodeCoord::new(3, 0));
        let greedy = plan_path(&torus, from, to, &HashSet::new());
        assert_eq!(greedy.len(), 4, "three East hops");
        // Kill the first East hop (both cable ends, as failed_links
        // reports them).
        let peer = torus.id_of(torus.neighbour(NodeCoord::new(0, 0), Direction::East));
        let avoid: HashSet<(usize, Direction)> =
            [(from, Direction::East), (peer, Direction::East.opposite())]
                .into_iter()
                .collect();
        let detour = plan_path(&torus, from, to, &avoid);
        assert_ne!(detour[0].1, Some(Direction::East), "must leave another way");
        assert_eq!(detour.last().unwrap().0, to);
        // Shortest detour on the hex torus is one hop longer than the
        // straight line at most (NE then SE-ish composite): just check
        // it is a valid connected path that skips the avoided links.
        for w in detour.windows(2) {
            let (cur, hop) = (w[0].0, w[0].1.expect("interior hop"));
            assert!(!avoid.contains(&(cur, hop)), "took an avoided link");
            assert_eq!(
                torus.id_of(torus.neighbour(torus.coord_of(cur), hop)),
                w[1].0,
                "hops must chain"
            );
        }
    }

    #[test]
    fn build_avoiding_still_delivers_everywhere() {
        let (net, placement) = dense_random_ring();
        let base = RoutingPlan::build(&net, &placement, 4, 4);
        // Avoid every outgoing link of chip 0 except two, from both
        // cable ends — a harsh regional failure.
        let torus = Torus::new(4, 4);
        let mut avoid: Vec<(u32, Direction)> = Vec::new();
        for d in [Direction::East, Direction::NorthEast, Direction::North] {
            let peer = torus.id_of(torus.neighbour(torus.coord_of(0), d));
            avoid.push((0, d));
            avoid.push((peer as u32, d.opposite()));
        }
        let repaired = RoutingPlan::build_avoiding(&net, &placement, 4, 4, &avoid);
        // Same delivered (chip, core) sets for every source.
        assert_eq!(base.verify_against(&repaired), 0);
        // And chip 0's tables genuinely changed course: no entry routes
        // out an avoided direction.
        for e in repaired.chip_table(0) {
            for d in [Direction::East, Direction::NorthEast, Direction::North] {
                assert!(!e.route.has_link(d), "entry still uses avoided link {d:?}");
            }
        }
    }

    #[test]
    fn bfs_path_reports_disconnection() {
        let torus = Torus::new(4, 4);
        // Seal chip 5 in completely.
        let mut avoid = HashSet::new();
        for d in 0..6 {
            let dir = Direction::from_index(d);
            let peer = torus.id_of(torus.neighbour(torus.coord_of(5), dir));
            avoid.insert((5usize, dir));
            avoid.insert((peer, dir.opposite()));
        }
        assert!(bfs_path(&torus, 0, 5, &avoid).is_none());
        // plan_path falls back to the greedy path rather than panicking.
        let fallback = plan_path(&torus, 0, 5, &avoid);
        assert_eq!(fallback.last().unwrap().0, 5);
    }
}
