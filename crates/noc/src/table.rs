//! The multicast routing table: a ternary CAM of `(key, mask) → route`
//! entries, as held by each node's packet router (§4).
//!
//! A multicast packet's 32-bit AER key is compared against every entry;
//! the **first** entry whose `key & mask == packet_key & mask` wins and
//! its route set (any subset of the 6 links and the local cores) is used.
//! If no entry matches, the packet is *default routed*: it continues
//! straight through, out of the link opposite its arrival port — which is
//! what lets the mapper omit entries along straight path segments.

use crate::direction::Direction;

/// A set of router outputs: up to 6 inter-chip links and up to 26 local
/// processor cores, packed in a `u32` (bits 0–5 links, 6–31 cores).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct RouteSet(u32);

/// Highest local-core index representable in a route word.
pub const MAX_CORES_PER_ROUTE: usize = 26;

impl RouteSet {
    /// The empty route.
    pub const EMPTY: RouteSet = RouteSet(0);

    /// Creates a route set from a raw route word.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        RouteSet(bits)
    }

    /// The raw route word.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Adds an inter-chip link output.
    #[inline]
    pub fn with_link(mut self, d: Direction) -> Self {
        self.0 |= 1 << d.index();
        self
    }

    /// Adds a local core output.
    ///
    /// # Panics
    ///
    /// Panics if `core >= 26`.
    #[inline]
    pub fn with_core(mut self, core: usize) -> Self {
        assert!(core < MAX_CORES_PER_ROUTE, "core index {core} out of range");
        self.0 |= 1 << (6 + core);
        self
    }

    /// Whether link `d` is in the set.
    #[inline]
    pub fn has_link(self, d: Direction) -> bool {
        self.0 & (1 << d.index()) != 0
    }

    /// Whether local core `core` is in the set.
    #[inline]
    pub fn has_core(self, core: usize) -> bool {
        core < MAX_CORES_PER_ROUTE && self.0 & (1 << (6 + core)) != 0
    }

    /// Iterates the link outputs.
    pub fn links(self) -> impl Iterator<Item = Direction> {
        (0..6)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(Direction::from_index)
    }

    /// Iterates the local core outputs.
    pub fn cores(self) -> impl Iterator<Item = usize> {
        (0..MAX_CORES_PER_ROUTE).filter(move |c| self.0 & (1 << (6 + c)) != 0)
    }

    /// The local-core subset as a bitmask (bit `c` = core `c`).
    #[inline]
    pub fn core_mask(self) -> u32 {
        self.0 >> 6
    }

    /// Whether the route has no outputs at all.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two route sets.
    #[inline]
    pub fn union(self, other: RouteSet) -> RouteSet {
        RouteSet(self.0 | other.0)
    }
}

/// One ternary-CAM entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct McTableEntry {
    /// Key bits compared where `mask` is 1.
    pub key: u32,
    /// Ternary mask: 1 = compare, 0 = don't care.
    pub mask: u32,
    /// Outputs for matching packets.
    pub route: RouteSet,
}

impl McTableEntry {
    /// Whether a packet key matches this entry.
    #[inline]
    pub fn matches(&self, packet_key: u32) -> bool {
        packet_key & self.mask == self.key & self.mask
    }
}

/// A node's multicast routing table (ordered: first match wins).
///
/// # Example
///
/// ```
/// use spinn_noc::table::{McTable, McTableEntry, RouteSet};
/// use spinn_noc::direction::Direction;
///
/// let mut t = McTable::new(1024);
/// t.insert(McTableEntry {
///     key: 0x100,
///     mask: 0xFF00,
///     route: RouteSet::EMPTY.with_link(Direction::East),
/// }).unwrap();
/// assert!(t.lookup(0x0142).unwrap().has_link(Direction::East));
/// assert!(t.lookup(0x0242).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct McTable {
    entries: Vec<McTableEntry>,
    capacity: usize,
    version: u64,
    peak_len: usize,
}

/// Source of globally unique table versions: every mutation of any
/// table draws a fresh value, so two *different* tables can never share
/// a version (a cached compilation keyed on the version of a table that
/// was wholesale-replaced must miss, not silently match).
static NEXT_VERSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Error returned when a routing table's CAM capacity is exhausted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TableFull {
    /// The table's capacity.
    pub capacity: usize,
}

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "multicast routing table full ({} entries)",
            self.capacity
        )
    }
}

impl std::error::Error for TableFull {}

impl McTable {
    /// Creates an empty table with the given CAM capacity (the SpiNNaker
    /// router has 1024 entries).
    pub fn new(capacity: usize) -> Self {
        McTable {
            entries: Vec::new(),
            capacity,
            version: fresh_version(),
            peak_len: 0,
        }
    }

    /// Appends an entry (lowest priority so far).
    ///
    /// # Errors
    ///
    /// Returns [`TableFull`] if the CAM capacity would be exceeded.
    pub fn insert(&mut self, entry: McTableEntry) -> Result<(), TableFull> {
        if self.entries.len() >= self.capacity {
            return Err(TableFull {
                capacity: self.capacity,
            });
        }
        self.entries.push(entry);
        self.peak_len = self.peak_len.max(self.entries.len());
        self.version = fresh_version();
        Ok(())
    }

    /// Removes every entry (reprogramming the CAM from scratch, e.g.
    /// after a monitor-driven migration). The occupancy high-water mark
    /// ([`McTable::peak_len`]) survives.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.version = fresh_version();
    }

    /// Globally unique edit stamp: every mutation of any table draws a
    /// fresh value, so cached compilations
    /// ([`crate::compiled::CompiledTable`]) detect both in-place edits
    /// and wholesale table replacement, and routers recompile after
    /// fault-injection table rewrites.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Most entries ever simultaneously installed (CAM occupancy
    /// high-water mark; survives [`McTable::clear`]).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Looks a packet key up; `None` means default-route.
    pub fn lookup(&self, packet_key: u32) -> Option<RouteSet> {
        self.entries
            .iter()
            .find(|e| e.matches(packet_key))
            .map(|e| e.route)
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// CAM capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates the entries in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &McTableEntry> {
        self.entries.iter()
    }

    /// Restores the occupancy high-water mark from a checkpoint
    /// (clamped up by the current length, so a restored table never
    /// reports a peak below what is installed).
    pub(crate) fn restore_peak(&mut self, peak: usize) {
        self.peak_len = peak.max(self.entries.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_set_links_and_cores() {
        let r = RouteSet::EMPTY
            .with_link(Direction::East)
            .with_link(Direction::South)
            .with_core(0)
            .with_core(17);
        assert!(r.has_link(Direction::East));
        assert!(!r.has_link(Direction::West));
        assert!(r.has_core(17));
        assert!(!r.has_core(3));
        assert_eq!(r.links().count(), 2);
        assert_eq!(r.cores().collect::<Vec<_>>(), vec![0, 17]);
        assert_eq!(r.core_mask(), 1 | (1 << 17));
        assert!(!r.is_empty());
        assert!(RouteSet::EMPTY.is_empty());
    }

    #[test]
    fn route_set_union() {
        let a = RouteSet::EMPTY.with_link(Direction::East);
        let b = RouteSet::EMPTY.with_core(2);
        let u = a.union(b);
        assert!(u.has_link(Direction::East) && u.has_core(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_out_of_range_panics() {
        let _ = RouteSet::EMPTY.with_core(26);
    }

    #[test]
    fn first_match_priority() {
        let mut t = McTable::new(16);
        t.insert(McTableEntry {
            key: 0b1000,
            mask: 0b1000,
            route: RouteSet::EMPTY.with_link(Direction::East),
        })
        .unwrap();
        t.insert(McTableEntry {
            key: 0b1100,
            mask: 0b1100,
            route: RouteSet::EMPTY.with_link(Direction::West),
        })
        .unwrap();
        // 0b1100 matches both; the first entry must win.
        let r = t.lookup(0b1100).unwrap();
        assert!(r.has_link(Direction::East));
        assert!(!r.has_link(Direction::West));
    }

    #[test]
    fn dont_care_bits() {
        let mut t = McTable::new(4);
        t.insert(McTableEntry {
            key: 0xAB00_0000,
            mask: 0xFF00_0000,
            route: RouteSet::EMPTY.with_core(1),
        })
        .unwrap();
        assert!(t.lookup(0xAB12_3456).is_some());
        assert!(t.lookup(0xAC12_3456).is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut t = McTable::new(1);
        let e = McTableEntry {
            key: 0,
            mask: 0,
            route: RouteSet::EMPTY,
        };
        t.insert(e).unwrap();
        let err = t.insert(e).unwrap_err();
        assert_eq!(err.capacity, 1);
        assert_eq!(err.to_string(), "multicast routing table full (1 entries)");
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut t = McTable::new(4);
        let v0 = t.version();
        t.insert(McTableEntry {
            key: 0,
            mask: 0,
            route: RouteSet::EMPTY,
        })
        .unwrap();
        assert!(t.version() > v0);
        let v1 = t.version();
        t.clear();
        assert!(t.version() > v1);
        assert!(t.is_empty());
    }

    #[test]
    fn zero_mask_matches_everything() {
        let mut t = McTable::new(4);
        t.insert(McTableEntry {
            key: 123,
            mask: 0,
            route: RouteSet::EMPTY.with_core(5),
        })
        .unwrap();
        assert!(t.lookup(0).is_some());
        assert!(t.lookup(u32::MAX).is_some());
    }
}
