//! A compiled form of the multicast routing table for the per-packet hot
//! path.
//!
//! [`McTable::lookup`](crate::table::McTable::lookup) models the ternary
//! CAM as a linear scan — faithful to the hardware's parallel compare,
//! but O(entries) per packet in software. [`CompiledTable`] rebuilds the
//! same table as a set of **mask groups**: entries sharing a ternary
//! mask land in one hash table keyed by `key & mask`, so a lookup costs
//! one hash probe per *distinct mask* instead of one compare per entry.
//! Routing plans use a handful of masks (a core-block mask plus the
//! widened masks minimization produces), so the probe count stays tiny
//! even at full 1024-entry occupancy.
//!
//! The per-group table is a small open-addressing map with a
//! multiply-shift hash rather than `std::collections::HashMap`: the
//! router probes it for every packet hop, and SipHash plus the
//! `HashMap` miss path cost more than the rest of the routing decision
//! combined. The map is an internal acceleration structure — lookups
//! return exactly the linear scan's result either way — and the
//! Fibonacci hash is deterministic, so compiled routers behave
//! identically across runs and hosts.
//!
//! First-match priority is preserved exactly: every entry carries its
//! CAM index, each bucket keeps the lowest index for its masked key, and
//! a lookup that matches in several groups returns the match with the
//! lowest index — precisely the entry the linear scan would have found
//! first.

use crate::table::{McTable, RouteSet};

/// One slot of the open-addressing map: a masked key, the CAM index of
/// the first entry with that masked key, and its route. `index ==
/// EMPTY_SLOT` marks a free slot (CAM indices are bounded by the
/// table's capacity, far below the sentinel).
#[derive(Clone, Copy, Debug)]
struct Slot {
    masked_key: u32,
    index: u32,
    route: RouteSet,
}

const EMPTY_SLOT: u32 = u32::MAX;

/// One group of entries sharing a ternary mask: an open-addressing
/// table over `key & mask` with linear probing. Capacity is a power of
/// two at least twice the bucket count, so probe chains stay short.
#[derive(Clone, Debug)]
struct MaskGroup {
    /// The shared ternary mask.
    mask: u32,
    /// Power-of-two slot array.
    slots: Vec<Slot>,
    /// `slots.len() - 1`, for masking the hash.
    cap_mask: usize,
}

impl MaskGroup {
    fn new(mask: u32) -> Self {
        let mut g = MaskGroup {
            mask,
            slots: Vec::new(),
            cap_mask: 0,
        };
        g.rebuild(8);
        g
    }

    /// Fibonacci (multiply-shift) hash of a masked key.
    #[inline]
    fn hash(&self, masked_key: u32) -> usize {
        (masked_key.wrapping_mul(0x9E37_79B1) >> 16) as usize & self.cap_mask
    }

    fn rebuild(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two());
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Slot {
                    masked_key: 0,
                    index: EMPTY_SLOT,
                    route: RouteSet::EMPTY,
                };
                capacity
            ],
        );
        self.cap_mask = capacity - 1;
        for s in old {
            if s.index != EMPTY_SLOT {
                self.insert(s.masked_key, s.index, s.route);
            }
        }
    }

    /// Inserts keeping the lowest CAM index per masked key; grows at
    /// 50% occupancy (count tracked by the caller via `len`).
    fn insert(&mut self, masked_key: u32, index: u32, route: RouteSet) {
        let mut i = self.hash(masked_key);
        loop {
            let s = &mut self.slots[i];
            if s.index == EMPTY_SLOT {
                *s = Slot {
                    masked_key,
                    index,
                    route,
                };
                return;
            }
            if s.masked_key == masked_key {
                // First match wins: keep the lowest CAM index.
                if index < s.index {
                    s.index = index;
                    s.route = route;
                }
                return;
            }
            i = (i + 1) & self.cap_mask;
        }
    }

    #[inline]
    fn get(&self, masked_key: u32) -> Option<(u32, RouteSet)> {
        let mut i = self.hash(masked_key);
        loop {
            let s = &self.slots[i];
            if s.index == EMPTY_SLOT {
                return None;
            }
            if s.masked_key == masked_key {
                return Some((s.index, s.route));
            }
            i = (i + 1) & self.cap_mask;
        }
    }

    fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.index != EMPTY_SLOT).count()
    }
}

/// A key-indexed compilation of an [`McTable`] with identical first-match
/// semantics.
///
/// The compilation is tied to the table's [`McTable::version`]; the
/// router recompiles lazily whenever the version it compiled no longer
/// matches the live table (e.g. after fault-injection table edits).
///
/// # Example
///
/// ```
/// use spinn_noc::compiled::CompiledTable;
/// use spinn_noc::table::{McTable, McTableEntry, RouteSet};
/// use spinn_noc::direction::Direction;
///
/// let mut t = McTable::new(1024);
/// t.insert(McTableEntry {
///     key: 0x100,
///     mask: 0xFF00,
///     route: RouteSet::EMPTY.with_link(Direction::East),
/// }).unwrap();
/// let c = CompiledTable::compile(&t);
/// assert_eq!(c.lookup(0x0142), t.lookup(0x0142));
/// assert_eq!(c.lookup(0x0242), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CompiledTable {
    version: u64,
    groups: Vec<MaskGroup>,
    entries: usize,
}

impl CompiledTable {
    /// Compiles a table into its mask-grouped form.
    pub fn compile(table: &McTable) -> Self {
        let mut groups: Vec<MaskGroup> = Vec::new();
        for (index, e) in table.iter().enumerate() {
            let group = match groups.iter_mut().find(|g| g.mask == e.mask) {
                Some(g) => g,
                None => {
                    groups.push(MaskGroup::new(e.mask));
                    groups.last_mut().expect("just pushed")
                }
            };
            group.insert(e.key & e.mask, index as u32, e.route);
            // Keep occupancy at or below half so probe chains stay
            // short. `occupied` is a scan, but compilation is rare
            // (per table version) and tables are at most ~1k entries.
            let occupied = group.occupied();
            if occupied * 2 > group.slots.len() {
                let capacity = group.slots.len() * 2;
                group.rebuild(capacity);
            }
        }
        CompiledTable {
            version: table.version(),
            groups,
            entries: table.len(),
        }
    }

    /// The [`McTable::version`] this compilation reflects.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of distinct ternary masks (hash probes per lookup).
    pub fn mask_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of entries compiled in.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the compiled table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Looks a packet key up; `None` means default-route. Returns exactly
    /// what the linear first-match scan over the source table returns.
    #[inline]
    pub fn lookup(&self, packet_key: u32) -> Option<RouteSet> {
        let mut best: Option<(u32, RouteSet)> = None;
        for g in &self.groups {
            if let Some((index, route)) = g.get(packet_key & g.mask) {
                if best.is_none_or(|(b, _)| index < b) {
                    best = Some((index, route));
                }
            }
        }
        best.map(|(_, route)| route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direction::Direction;
    use crate::table::McTableEntry;

    fn entry(key: u32, mask: u32, core: usize) -> McTableEntry {
        McTableEntry {
            key,
            mask,
            route: RouteSet::EMPTY.with_core(core),
        }
    }

    #[test]
    fn matches_linear_scan_on_random_tables() {
        // A deterministic pseudo-random sweep: many entries, overlapping
        // masks, lookups compared against the linear scan bit-for-bit.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20 {
            let mut t = McTable::new(512);
            for _ in 0..200 {
                let key = next() as u32;
                let mask = match next() % 4 {
                    0 => 0xFFFF_F800,
                    1 => 0xFFFF_F000,
                    2 => 0xFFFF_8000,
                    _ => u32::MAX,
                };
                t.insert(entry(key, mask, (next() % 26) as usize)).unwrap();
            }
            let c = CompiledTable::compile(&t);
            assert_eq!(c.len(), 200);
            for _ in 0..500 {
                // Probe near inserted keys so hits actually occur.
                let probe = next() as u32;
                assert_eq!(c.lookup(probe), t.lookup(probe));
            }
            for e in t.iter() {
                assert_eq!(c.lookup(e.key), t.lookup(e.key));
            }
        }
    }

    #[test]
    fn first_match_priority_across_mask_groups() {
        let mut t = McTable::new(8);
        t.insert(McTableEntry {
            key: 0b1000,
            mask: 0b1000,
            route: RouteSet::EMPTY.with_link(Direction::East),
        })
        .unwrap();
        t.insert(McTableEntry {
            key: 0b1100,
            mask: 0b1100,
            route: RouteSet::EMPTY.with_link(Direction::West),
        })
        .unwrap();
        let c = CompiledTable::compile(&t);
        // 0b1100 matches both groups; the earlier entry must win.
        let r = c.lookup(0b1100).unwrap();
        assert!(r.has_link(Direction::East));
        assert!(!r.has_link(Direction::West));
        assert_eq!(c.mask_groups(), 2);
    }

    #[test]
    fn duplicate_masked_keys_keep_first() {
        let mut t = McTable::new(8);
        t.insert(entry(0x800, 0xFFFF_F800, 1)).unwrap();
        t.insert(entry(0x801, 0xFFFF_F800, 2)).unwrap(); // same masked key
        let c = CompiledTable::compile(&t);
        assert!(c.lookup(0x805).unwrap().has_core(1));
    }

    #[test]
    fn empty_table_compiles_to_miss() {
        let t = McTable::new(4);
        let c = CompiledTable::compile(&t);
        assert!(c.is_empty());
        assert_eq!(c.lookup(123), None);
    }

    #[test]
    fn version_tracks_source_table() {
        let mut t = McTable::new(4);
        let c0 = CompiledTable::compile(&t);
        t.insert(entry(0, u32::MAX, 1)).unwrap();
        assert_ne!(c0.version(), t.version());
        let c1 = CompiledTable::compile(&t);
        assert_eq!(c1.version(), t.version());
    }
}
