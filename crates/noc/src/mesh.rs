//! The 2-D toroidal triangular-facet mesh (Fig. 2) and its metric.

use crate::direction::{Direction, ALL_DIRECTIONS};

/// A chip position in the mesh, in axial coordinates.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeCoord {
    /// Column, `0..width`.
    pub x: u32,
    /// Row, `0..height`.
    pub y: u32,
}

impl NodeCoord {
    /// Creates a coordinate.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        NodeCoord { x, y }
    }
}

impl std::fmt::Display for NodeCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// The toroidal mesh of chips: `width x height` nodes, each linked to six
/// neighbours, with wraparound in both axes.
///
/// # Example
///
/// ```
/// use spinn_noc::mesh::{Torus, NodeCoord};
///
/// let m = Torus::new(4, 4);
/// assert_eq!(m.len(), 16);
/// let id = m.id_of(NodeCoord::new(3, 2));
/// assert_eq!(m.coord_of(id), NodeCoord::new(3, 2));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Torus {
    width: u32,
    height: u32,
}

impl Torus {
    /// Creates a mesh of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Torus { width, height }
    }

    /// Mesh width in chips.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mesh height in chips.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of chips.
    #[inline]
    pub fn len(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Whether the mesh is empty (never true: dimensions are positive).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dense node id of a coordinate (row-major).
    #[inline]
    pub fn id_of(&self, c: NodeCoord) -> usize {
        debug_assert!(c.x < self.width && c.y < self.height);
        (c.y * self.width + c.x) as usize
    }

    /// Coordinate of a dense node id.
    #[inline]
    pub fn coord_of(&self, id: usize) -> NodeCoord {
        let id = id as u32;
        debug_assert!(id < self.width * self.height);
        NodeCoord::new(id % self.width, id / self.width)
    }

    /// Iterates all node coordinates in id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeCoord> + '_ {
        (0..self.len()).map(move |i| self.coord_of(i))
    }

    /// The neighbour of `c` one hop in direction `d` (with wraparound).
    pub fn neighbour(&self, c: NodeCoord, d: Direction) -> NodeCoord {
        let (dx, dy) = d.delta();
        let x = (c.x as i64 + dx).rem_euclid(self.width as i64) as u32;
        let y = (c.y as i64 + dy).rem_euclid(self.height as i64) as u32;
        NodeCoord::new(x, y)
    }

    /// The shortest displacement from `from` to `to` as an `(dx, dy)`
    /// pair, taking wraparound into account (the pair minimising hex
    /// distance).
    pub fn displacement(&self, from: NodeCoord, to: NodeCoord) -> (i64, i64) {
        let w = self.width as i64;
        let h = self.height as i64;
        let raw_dx = to.x as i64 - from.x as i64;
        let raw_dy = to.y as i64 - from.y as i64;
        let mut best = (raw_dx, raw_dy);
        let mut best_d = hex_len(raw_dx, raw_dy);
        for wx in [-w, 0, w] {
            for wy in [-h, 0, h] {
                let dx = raw_dx + wx;
                let dy = raw_dy + wy;
                let d = hex_len(dx, dy);
                if d < best_d {
                    best_d = d;
                    best = (dx, dy);
                }
            }
        }
        best
    }

    /// Hex (link-hop) distance between two nodes on the torus.
    pub fn hex_distance(&self, a: NodeCoord, b: NodeCoord) -> u64 {
        let (dx, dy) = self.displacement(a, b);
        hex_len(dx, dy)
    }

    /// The next-hop direction of the algorithmic point-to-point route from
    /// `from` towards `to`; `None` if already there.
    ///
    /// Greedy: diagonal steps while both axes agree in sign, axis steps
    /// otherwise — this walks a shortest path in the hex metric.
    pub fn p2p_next_hop(&self, from: NodeCoord, to: NodeCoord) -> Option<Direction> {
        if from == to {
            return None;
        }
        let (dx, dy) = self.displacement(from, to);
        Some(step_towards(dx, dy))
    }

    /// The full point-to-point route as a direction sequence.
    pub fn p2p_route(&self, from: NodeCoord, to: NodeCoord) -> Vec<Direction> {
        let mut route = Vec::new();
        let mut cur = from;
        while let Some(d) = self.p2p_next_hop(cur, to) {
            route.push(d);
            cur = self.neighbour(cur, d);
            debug_assert!(route.len() <= self.len(), "p2p route failed to converge");
        }
        route
    }

    /// All six neighbours of a node.
    pub fn neighbours(&self, c: NodeCoord) -> [(Direction, NodeCoord); 6] {
        let mut out = [(Direction::East, c); 6];
        for (i, d) in ALL_DIRECTIONS.into_iter().enumerate() {
            out[i] = (d, self.neighbour(c, d));
        }
        out
    }
}

/// Hex-metric length of a displacement with E/NE/N/W/SW/S steps: diagonal
/// steps cover (+1,+1) or (−1,−1), so same-sign displacements cost
/// `max(|dx|, |dy|)` and opposite-sign ones cost `|dx| + |dy|`.
#[inline]
pub fn hex_len(dx: i64, dy: i64) -> u64 {
    if (dx >= 0) == (dy >= 0) {
        dx.unsigned_abs().max(dy.unsigned_abs())
    } else {
        dx.unsigned_abs() + dy.unsigned_abs()
    }
}

fn step_towards(dx: i64, dy: i64) -> Direction {
    if dx > 0 && dy > 0 {
        Direction::NorthEast
    } else if dx < 0 && dy < 0 {
        Direction::SouthWest
    } else if dx > 0 {
        Direction::East
    } else if dx < 0 {
        Direction::West
    } else if dy > 0 {
        Direction::North
    } else {
        Direction::South
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_roundtrip() {
        let m = Torus::new(5, 3);
        for id in 0..m.len() {
            assert_eq!(m.id_of(m.coord_of(id)), id);
        }
    }

    #[test]
    fn neighbour_wraps() {
        let m = Torus::new(4, 4);
        assert_eq!(
            m.neighbour(NodeCoord::new(3, 3), Direction::NorthEast),
            NodeCoord::new(0, 0)
        );
        assert_eq!(
            m.neighbour(NodeCoord::new(0, 0), Direction::SouthWest),
            NodeCoord::new(3, 3)
        );
    }

    #[test]
    fn hex_len_cases() {
        assert_eq!(hex_len(0, 0), 0);
        assert_eq!(hex_len(3, 0), 3);
        assert_eq!(hex_len(3, 3), 3); // pure diagonal
        assert_eq!(hex_len(3, 1), 3); // mixed same-sign: max
        assert_eq!(hex_len(2, -2), 4); // opposite signs: sum
        assert_eq!(hex_len(-3, -2), 3);
    }

    #[test]
    fn distance_is_zero_iff_equal() {
        let m = Torus::new(6, 6);
        let a = NodeCoord::new(2, 3);
        assert_eq!(m.hex_distance(a, a), 0);
        assert!(m.hex_distance(a, NodeCoord::new(2, 4)) > 0);
    }

    #[test]
    fn distance_symmetric() {
        let m = Torus::new(7, 5);
        for a in m.iter() {
            for b in m.iter() {
                assert_eq!(m.hex_distance(a, b), m.hex_distance(b, a), "{a} {b}");
            }
        }
    }

    #[test]
    fn distance_uses_wraparound() {
        let m = Torus::new(8, 8);
        // 7 steps east = 1 step west on the torus.
        assert_eq!(
            m.hex_distance(NodeCoord::new(0, 0), NodeCoord::new(7, 0)),
            1
        );
        assert_eq!(
            m.hex_distance(NodeCoord::new(0, 0), NodeCoord::new(7, 7)),
            1
        );
    }

    #[test]
    fn p2p_route_lengths_match_distance() {
        let m = Torus::new(6, 6);
        for a in m.iter() {
            for b in m.iter() {
                let route = m.p2p_route(a, b);
                assert_eq!(
                    route.len() as u64,
                    m.hex_distance(a, b),
                    "route from {a} to {b} not shortest"
                );
                // And the route actually arrives.
                let mut cur = a;
                for d in route {
                    cur = m.neighbour(cur, d);
                }
                assert_eq!(cur, b);
            }
        }
    }

    #[test]
    fn neighbours_are_at_distance_one() {
        let m = Torus::new(5, 5);
        let c = NodeCoord::new(2, 2);
        for (_, n) in m.neighbours(c) {
            assert_eq!(m.hex_distance(c, n), 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = Torus::new(0, 4);
    }
}
