//! One node's packet router: tables, programmable timeouts and statistics.
//!
//! The dynamic behaviour (queues, blocking, emergency redirection, drops)
//! is driven by [`crate::fabric::Fabric`]; this module holds the per-node
//! state and the routing *decisions*, which makes them unit-testable in
//! isolation.

use crate::direction::Direction;
use crate::packet::{EmergencyState, Packet, PacketKind};
use crate::table::{McTable, RouteSet};

/// Per-router configuration (§5.3: the waits are programmable registers).
#[derive(Copy, Clone, Debug)]
pub struct RouterConfig {
    /// Multicast CAM capacity (1024 on the SpiNNaker chip).
    pub table_capacity: usize,
    /// Time a packet may wait on a blocked output before emergency
    /// routing is invoked, ns.
    pub wait1_ns: u64,
    /// Additional time before the packet is dropped, ns.
    pub wait2_ns: u64,
    /// Whether the emergency-routing mechanism is enabled (ablation
    /// switch for experiment E3).
    pub emergency_enabled: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            table_capacity: 1024,
            wait1_ns: 400,
            wait2_ns: 800,
            emergency_enabled: true,
        }
    }
}

/// Counters a router exposes to its monitor processor.
#[derive(Clone, Debug, Default)]
pub struct RouterStats {
    /// Multicast packets routed via a table hit.
    pub mc_table_hits: u64,
    /// Multicast packets default-routed (no matching entry: straight
    /// through).
    pub mc_default_routed: u64,
    /// Multicast packets delivered to local cores.
    pub mc_local_deliveries: u64,
    /// Locally injected multicast packets with no table entry (mapping
    /// bug): dropped.
    pub mc_unroutable_local: u64,
    /// Point-to-point packets forwarded.
    pub p2p_forwarded: u64,
    /// Point-to-point packets delivered here.
    pub p2p_delivered: u64,
    /// Nearest-neighbour packets delivered here.
    pub nn_delivered: u64,
    /// Emergency first-leg redirections performed (§5.3).
    pub emergency_reroutes: u64,
    /// Emergency second-leg forwards performed.
    pub emergency_second_legs: u64,
    /// Packets dropped after wait1 + wait2 (monitor is notified).
    pub dropped: u64,
    /// Packets dropped because they exceeded the hop limit.
    pub aged_out: u64,
}

/// The routing decision for one packet at one router.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// Send out these links and deliver to these local cores.
    Multicast(RouteSet),
    /// Forward one hop towards a p2p destination.
    Forward(Direction),
    /// Deliver to this node's monitor/system software.
    DeliverLocal,
    /// Drop: locally injected multicast with no table entry.
    UnroutableLocal,
}

/// Where a packet entered the router.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Port {
    /// Injected by a local processor.
    Local,
    /// Arrived over an inter-chip link (the link's direction *at this
    /// node*, i.e. the port id).
    Link(Direction),
}

/// One node's router: the multicast CAM plus statistics.
#[derive(Clone, Debug)]
pub struct Router {
    /// The multicast routing table.
    pub table: McTable,
    /// Router statistics (read by the monitor processor).
    pub stats: RouterStats,
    cfg: RouterConfig,
}

impl Router {
    /// Creates a router with an empty table.
    pub fn new(cfg: RouterConfig) -> Self {
        Router {
            table: McTable::new(cfg.table_capacity),
            stats: RouterStats::default(),
            cfg,
        }
    }

    /// The router's configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Decides where a multicast packet goes. `input` is the arrival
    /// port; default routing continues straight through (out the port
    /// opposite the arrival port).
    pub fn decide_mc(&mut self, key: u32, input: Port) -> RouteDecision {
        match self.table.lookup(key) {
            Some(route) => {
                self.stats.mc_table_hits += 1;
                RouteDecision::Multicast(route)
            }
            None => match input {
                Port::Link(d) => {
                    self.stats.mc_default_routed += 1;
                    RouteDecision::Multicast(RouteSet::EMPTY.with_link(d.opposite()))
                }
                Port::Local => {
                    self.stats.mc_unroutable_local += 1;
                    RouteDecision::UnroutableLocal
                }
            },
        }
    }

    /// The emergency second-leg output for a first-leg packet that
    /// arrived on `arrival_port`: one step counter-clockwise closes the
    /// mesh triangle (Fig. 8).
    pub fn second_leg_output(arrival_port: Direction) -> Direction {
        arrival_port.rotate_ccw()
    }

    /// The *effective* arrival port of a packet that completed an
    /// emergency detour: as if it had arrived over the original (blocked)
    /// link, so that default routing continues on the original heading.
    pub fn effective_port_after_detour(arrival_port: Direction) -> Direction {
        arrival_port.rotate_ccw()
    }

    /// Decides how to handle any packet kind; multicast consults the CAM.
    pub fn decide(
        &mut self,
        packet: &Packet,
        input: Port,
        here_is_p2p_dest: bool,
    ) -> RouteDecision {
        match packet.kind {
            PacketKind::Multicast => match packet.emergency {
                EmergencyState::Normal => self.decide_mc(packet.key, input),
                // First-leg packets are handled by the fabric (they do
                // not consult the table); second-leg packets arrive here
                // already reverted to Normal.
                _ => self.decide_mc(packet.key, input),
            },
            PacketKind::PointToPoint => {
                if here_is_p2p_dest {
                    self.stats.p2p_delivered += 1;
                    RouteDecision::DeliverLocal
                } else {
                    self.stats.p2p_forwarded += 1;
                    // Direction chosen by the fabric (needs mesh
                    // knowledge); placeholder East is replaced there.
                    RouteDecision::Forward(Direction::East)
                }
            }
            PacketKind::NearestNeighbour => {
                self.stats.nn_delivered += 1;
                RouteDecision::DeliverLocal
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::McTableEntry;

    #[test]
    fn table_hit_routes_by_entry() {
        let mut r = Router::new(RouterConfig::default());
        r.table
            .insert(McTableEntry {
                key: 0x10,
                mask: 0xF0,
                route: RouteSet::EMPTY.with_link(Direction::North).with_core(3),
            })
            .unwrap();
        match r.decide_mc(0x17, Port::Local) {
            RouteDecision::Multicast(route) => {
                assert!(route.has_link(Direction::North));
                assert!(route.has_core(3));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.stats.mc_table_hits, 1);
    }

    #[test]
    fn default_route_continues_straight() {
        let mut r = Router::new(RouterConfig::default());
        // Arrived on the West port => travelling east => leaves East.
        match r.decide_mc(99, Port::Link(Direction::West)) {
            RouteDecision::Multicast(route) => {
                assert!(route.has_link(Direction::East));
                assert_eq!(route.links().count(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.stats.mc_default_routed, 1);
    }

    #[test]
    fn local_injection_without_entry_is_unroutable() {
        let mut r = Router::new(RouterConfig::default());
        assert_eq!(r.decide_mc(1, Port::Local), RouteDecision::UnroutableLocal);
        assert_eq!(r.stats.mc_unroutable_local, 1);
    }

    #[test]
    fn second_leg_geometry() {
        // Blocked link East: first leg NE; arrival port at the
        // intermediate node is opposite(NE) = SW; second leg must be
        // South (SW rotated ccw).
        let arrival = Direction::NorthEast.opposite();
        assert_eq!(Router::second_leg_output(arrival), Direction::South);
    }

    #[test]
    fn p2p_decisions() {
        let mut r = Router::new(RouterConfig::default());
        let p = Packet::p2p(1, 2, 0);
        assert_eq!(r.decide(&p, Port::Local, true), RouteDecision::DeliverLocal);
        assert!(matches!(
            r.decide(&p, Port::Local, false),
            RouteDecision::Forward(_)
        ));
        assert_eq!(r.stats.p2p_delivered, 1);
        assert_eq!(r.stats.p2p_forwarded, 1);
    }

    #[test]
    fn nn_always_delivers() {
        let mut r = Router::new(RouterConfig::default());
        let p = Packet::nn(0, 0);
        assert_eq!(
            r.decide(&p, Port::Link(Direction::East), false),
            RouteDecision::DeliverLocal
        );
        assert_eq!(r.stats.nn_delivered, 1);
    }
}
