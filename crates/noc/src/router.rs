//! One node's packet router: tables, programmable timeouts and statistics.
//!
//! The dynamic behaviour (queues, blocking, emergency redirection, drops)
//! is driven by [`crate::fabric::Fabric`]; this module holds the per-node
//! state and the routing *decisions*, which makes them unit-testable in
//! isolation.

use crate::compiled::CompiledTable;
use crate::direction::Direction;
use crate::packet::{EmergencyState, Packet, PacketKind};
use crate::table::{McTable, RouteSet};

/// Per-router configuration (§5.3: the waits are programmable registers).
#[derive(Copy, Clone, Debug)]
pub struct RouterConfig {
    /// Multicast CAM capacity (1024 on the SpiNNaker chip).
    pub table_capacity: usize,
    /// Time a packet may wait on a blocked output before emergency
    /// routing is invoked, ns.
    pub wait1_ns: u64,
    /// Additional time before the packet is dropped, ns.
    pub wait2_ns: u64,
    /// Whether the emergency-routing mechanism is enabled (ablation
    /// switch for experiment E3).
    pub emergency_enabled: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            table_capacity: 1024,
            wait1_ns: 400,
            wait2_ns: 800,
            emergency_enabled: true,
        }
    }
}

/// Counters a router exposes to its monitor processor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Multicast packets routed via a table hit.
    pub mc_table_hits: u64,
    /// Multicast packets default-routed (no matching entry: straight
    /// through).
    pub mc_default_routed: u64,
    /// Multicast packets delivered to local cores.
    pub mc_local_deliveries: u64,
    /// Locally injected multicast packets with no table entry (mapping
    /// bug): dropped.
    pub mc_unroutable_local: u64,
    /// Point-to-point packets forwarded.
    pub p2p_forwarded: u64,
    /// Point-to-point packets delivered here.
    pub p2p_delivered: u64,
    /// Nearest-neighbour packets delivered here.
    pub nn_delivered: u64,
    /// Emergency first-leg redirections performed (§5.3).
    pub emergency_reroutes: u64,
    /// Emergency second-leg forwards performed.
    pub emergency_second_legs: u64,
    /// Packets dropped after wait1 + wait2 (monitor is notified).
    pub dropped: u64,
    /// Packets dropped because they exceeded the hop limit.
    pub aged_out: u64,
    /// Peak multicast CAM entries installed (occupancy high-water mark;
    /// aggregated as a max, not a sum, over routers).
    pub table_peak_entries: u64,
    /// Multicast CAM capacity (aggregated as a max over routers).
    pub table_capacity: u64,
}

impl RouterStats {
    /// Peak CAM occupancy as a fraction of capacity (0.0 when the
    /// capacity is unknown/zero).
    pub fn occupancy_ratio(&self) -> f64 {
        if self.table_capacity == 0 {
            0.0
        } else {
            self.table_peak_entries as f64 / self.table_capacity as f64
        }
    }
}

/// The routing decision for one packet at one router.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// Send out these links and deliver to these local cores.
    Multicast(RouteSet),
    /// Forward one hop towards a p2p destination.
    Forward(Direction),
    /// Deliver to this node's monitor/system software.
    DeliverLocal,
    /// Drop: locally injected multicast with no table entry.
    UnroutableLocal,
}

/// Where a packet entered the router.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Port {
    /// Injected by a local processor.
    Local,
    /// Arrived over an inter-chip link (the link's direction *at this
    /// node*, i.e. the port id).
    Link(Direction),
}

/// One node's router: the multicast CAM plus statistics.
///
/// Multicast lookups run against a [`CompiledTable`] — a key-indexed
/// compilation of [`Router::table`] with identical first-match semantics
/// — rather than the linear CAM scan. The compilation is refreshed
/// lazily whenever the table's [`McTable::version`] changes, so direct
/// table edits (plan loading, fault-injection rewrites, migration) are
/// picked up automatically on the next packet.
#[derive(Clone, Debug)]
pub struct Router {
    /// The multicast routing table.
    pub table: McTable,
    /// Router statistics (read by the monitor processor).
    pub stats: RouterStats,
    cfg: RouterConfig,
    compiled: CompiledTable,
}

impl Router {
    /// Creates a router with an empty table.
    pub fn new(cfg: RouterConfig) -> Self {
        Router {
            table: McTable::new(cfg.table_capacity),
            stats: RouterStats::default(),
            cfg,
            compiled: CompiledTable::default(),
        }
    }

    /// The router's configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// The compiled lookup structure currently in use (recompiling first
    /// if the table has been edited since the last packet).
    pub fn compiled(&mut self) -> &CompiledTable {
        self.refresh_compiled();
        &self.compiled
    }

    fn refresh_compiled(&mut self) {
        if self.compiled.version() != self.table.version() {
            self.compiled = CompiledTable::compile(&self.table);
            // Stats are cumulative across recompiles: both occupancy
            // fields only ever ratchet upwards, so a wholesale table
            // replacement (fault injection, migration) cannot regress
            // what the monitor has already observed.
            self.stats.table_peak_entries = self
                .stats
                .table_peak_entries
                .max(self.table.peak_len() as u64);
            self.stats.table_capacity = self.stats.table_capacity.max(self.table.capacity() as u64);
        }
    }

    /// Decides where a multicast packet goes. `input` is the arrival
    /// port; default routing continues straight through (out the port
    /// opposite the arrival port).
    pub fn decide_mc(&mut self, key: u32, input: Port) -> RouteDecision {
        self.refresh_compiled();
        match self.compiled.lookup(key) {
            Some(route) => {
                self.stats.mc_table_hits += 1;
                RouteDecision::Multicast(route)
            }
            None => match input {
                Port::Link(d) => {
                    self.stats.mc_default_routed += 1;
                    RouteDecision::Multicast(RouteSet::EMPTY.with_link(d.opposite()))
                }
                Port::Local => {
                    self.stats.mc_unroutable_local += 1;
                    RouteDecision::UnroutableLocal
                }
            },
        }
    }

    /// The emergency second-leg output for a first-leg packet that
    /// arrived on `arrival_port`: one step counter-clockwise closes the
    /// mesh triangle (Fig. 8).
    pub fn second_leg_output(arrival_port: Direction) -> Direction {
        arrival_port.rotate_ccw()
    }

    /// The *effective* arrival port of a packet that completed an
    /// emergency detour: as if it had arrived over the original (blocked)
    /// link, so that default routing continues on the original heading.
    pub fn effective_port_after_detour(arrival_port: Direction) -> Direction {
        arrival_port.rotate_ccw()
    }

    /// Decides how to handle any packet kind; multicast consults the CAM.
    pub fn decide(
        &mut self,
        packet: &Packet,
        input: Port,
        here_is_p2p_dest: bool,
    ) -> RouteDecision {
        match packet.kind {
            PacketKind::Multicast => match packet.emergency {
                EmergencyState::Normal => self.decide_mc(packet.key, input),
                // First-leg packets are handled by the fabric (they do
                // not consult the table); second-leg packets arrive here
                // already reverted to Normal.
                _ => self.decide_mc(packet.key, input),
            },
            PacketKind::PointToPoint => {
                if here_is_p2p_dest {
                    self.stats.p2p_delivered += 1;
                    RouteDecision::DeliverLocal
                } else {
                    self.stats.p2p_forwarded += 1;
                    // Direction chosen by the fabric (needs mesh
                    // knowledge); placeholder East is replaced there.
                    RouteDecision::Forward(Direction::East)
                }
            }
            PacketKind::NearestNeighbour => {
                self.stats.nn_delivered += 1;
                RouteDecision::DeliverLocal
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::McTableEntry;

    #[test]
    fn table_hit_routes_by_entry() {
        let mut r = Router::new(RouterConfig::default());
        r.table
            .insert(McTableEntry {
                key: 0x10,
                mask: 0xF0,
                route: RouteSet::EMPTY.with_link(Direction::North).with_core(3),
            })
            .unwrap();
        match r.decide_mc(0x17, Port::Local) {
            RouteDecision::Multicast(route) => {
                assert!(route.has_link(Direction::North));
                assert!(route.has_core(3));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.stats.mc_table_hits, 1);
    }

    #[test]
    fn default_route_continues_straight() {
        let mut r = Router::new(RouterConfig::default());
        // Arrived on the West port => travelling east => leaves East.
        match r.decide_mc(99, Port::Link(Direction::West)) {
            RouteDecision::Multicast(route) => {
                assert!(route.has_link(Direction::East));
                assert_eq!(route.links().count(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.stats.mc_default_routed, 1);
    }

    #[test]
    fn local_injection_without_entry_is_unroutable() {
        let mut r = Router::new(RouterConfig::default());
        assert_eq!(r.decide_mc(1, Port::Local), RouteDecision::UnroutableLocal);
        assert_eq!(r.stats.mc_unroutable_local, 1);
    }

    #[test]
    fn table_edits_recompile_before_next_decision() {
        let mut r = Router::new(RouterConfig::default());
        r.table
            .insert(McTableEntry {
                key: 0x10,
                mask: 0xF0,
                route: RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
        assert!(matches!(
            r.decide_mc(0x12, Port::Local),
            RouteDecision::Multicast(_)
        ));
        // Fault-injection style rewrite: clear and repoint the table.
        r.table.clear();
        r.table
            .insert(McTableEntry {
                key: 0x10,
                mask: 0xF0,
                route: RouteSet::EMPTY.with_core(7),
            })
            .unwrap();
        match r.decide_mc(0x12, Port::Local) {
            RouteDecision::Multicast(route) => {
                assert!(route.has_core(7));
                assert!(!route.has_core(1));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.stats.table_peak_entries, 1);
        assert_eq!(r.stats.table_capacity, 1024);
        assert!(r.stats.occupancy_ratio() > 0.0);
        assert_eq!(r.compiled().len(), 1);
    }

    #[test]
    fn wholesale_table_replacement_recompiles() {
        // Same edit count on both tables: only globally unique versions
        // make the cached compilation miss after `table` is replaced.
        let mut r = Router::new(RouterConfig::default());
        r.table
            .insert(McTableEntry {
                key: 0x10,
                mask: 0xF0,
                route: RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
        let _ = r.decide_mc(0x12, Port::Local); // compile against old table
        let mut replacement = McTable::new(1024);
        replacement
            .insert(McTableEntry {
                key: 0x10,
                mask: 0xF0,
                route: RouteSet::EMPTY.with_core(9),
            })
            .unwrap();
        r.table = replacement;
        match r.decide_mc(0x12, Port::Local) {
            RouteDecision::Multicast(route) => assert!(route.has_core(9)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn occupancy_peak_survives_clear() {
        let mut r = Router::new(RouterConfig::default());
        for key in 0..5 {
            r.table
                .insert(McTableEntry {
                    key,
                    mask: u32::MAX,
                    route: RouteSet::EMPTY.with_core(1),
                })
                .unwrap();
        }
        // Shrink the table before any packet is routed: the high-water
        // mark must still report the 5 entries that were live.
        r.table.clear();
        r.table
            .insert(McTableEntry {
                key: 0,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_core(2),
            })
            .unwrap();
        let _ = r.decide_mc(0, Port::Local);
        assert_eq!(r.stats.table_peak_entries, 5);
        assert_eq!(r.table.peak_len(), 5);
    }

    #[test]
    fn stats_stay_cumulative_across_table_version_bumps() {
        // Regression: stats live on the router, not the compiled table,
        // and must keep accumulating across lazy recompiles — including
        // a wholesale replacement with a *smaller* table, which used to
        // regress the recorded capacity (plain assignment instead of a
        // ratchet).
        let mut r = Router::new(RouterConfig::default());
        for key in 0..4 {
            r.table
                .insert(McTableEntry {
                    key,
                    mask: u32::MAX,
                    route: RouteSet::EMPTY.with_core(1),
                })
                .unwrap();
        }
        let _ = r.decide_mc(0, Port::Local); // hit
        let _ = r.decide_mc(99, Port::Link(Direction::West)); // default

        // Edit-in-place bump: clear + re-insert.
        r.table.clear();
        r.table
            .insert(McTableEntry {
                key: 0,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_core(2),
            })
            .unwrap();
        let _ = r.decide_mc(0, Port::Local); // hit against v2

        // Wholesale replacement with a smaller-capacity table.
        let mut small = McTable::new(16);
        small
            .insert(McTableEntry {
                key: 0,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_core(3),
            })
            .unwrap();
        r.table = small;
        let _ = r.decide_mc(0, Port::Local); // hit against v3
        let _ = r.decide_mc(1, Port::Local); // miss: unroutable

        assert_eq!(r.stats.mc_table_hits, 3, "hits accumulate across bumps");
        assert_eq!(r.stats.mc_default_routed, 1);
        assert_eq!(r.stats.mc_unroutable_local, 1);
        assert_eq!(r.stats.table_peak_entries, 4, "peak ratchets");
        assert_eq!(r.stats.table_capacity, 1024, "capacity ratchets");
    }

    #[test]
    fn second_leg_geometry() {
        // Blocked link East: first leg NE; arrival port at the
        // intermediate node is opposite(NE) = SW; second leg must be
        // South (SW rotated ccw).
        let arrival = Direction::NorthEast.opposite();
        assert_eq!(Router::second_leg_output(arrival), Direction::South);
    }

    #[test]
    fn p2p_decisions() {
        let mut r = Router::new(RouterConfig::default());
        let p = Packet::p2p(1, 2, 0);
        assert_eq!(r.decide(&p, Port::Local, true), RouteDecision::DeliverLocal);
        assert!(matches!(
            r.decide(&p, Port::Local, false),
            RouteDecision::Forward(_)
        ));
        assert_eq!(r.stats.p2p_delivered, 1);
        assert_eq!(r.stats.p2p_forwarded, 1);
    }

    #[test]
    fn nn_always_delivers() {
        let mut r = Router::new(RouterConfig::default());
        let p = Packet::nn(0, 0);
        assert_eq!(
            r.decide(&p, Port::Link(Direction::East), false),
            RouteDecision::DeliverLocal
        );
        assert_eq!(r.stats.nn_delivered, 1);
    }
}
