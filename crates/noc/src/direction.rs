//! The six inter-chip link directions of the triangular mesh.
//!
//! SpiNNaker's 2-D mesh has triangular facets (Fig. 2): each chip links to
//! six neighbours. With the conventional axial layout the direction
//! vectors are E=(1,0), NE=(1,1), N=(0,1), W=(−1,0), SW=(−1,−1), S=(0,−1).
//! Note there is no (1,−1) diagonal — the triangles lean one way, which is
//! exactly what makes the emergency-routing detour (via `d+1` then `d−1`)
//! close around any single link.

use std::fmt;

/// One of the six inter-chip link directions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Direction {
    /// +x
    East = 0,
    /// +x, +y
    NorthEast = 1,
    /// +y
    North = 2,
    /// −x
    West = 3,
    /// −x, −y
    SouthWest = 4,
    /// −y
    South = 5,
}

/// All six directions in index order.
pub const ALL_DIRECTIONS: [Direction; 6] = [
    Direction::East,
    Direction::NorthEast,
    Direction::North,
    Direction::West,
    Direction::SouthWest,
    Direction::South,
];

impl Direction {
    /// The direction's link index, `0..6`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Reconstructs a direction from a link index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 6`.
    #[inline]
    pub const fn from_index(idx: usize) -> Direction {
        match idx {
            0 => Direction::East,
            1 => Direction::NorthEast,
            2 => Direction::North,
            3 => Direction::West,
            4 => Direction::SouthWest,
            5 => Direction::South,
            _ => panic!("direction index out of range"),
        }
    }

    /// The opposite direction (rotate by 3).
    #[inline]
    pub const fn opposite(self) -> Direction {
        Direction::from_index((self.index() + 3) % 6)
    }

    /// Rotate one step counter-clockwise (`d+1`): the first leg of the
    /// emergency route around this link.
    #[inline]
    pub const fn rotate_ccw(self) -> Direction {
        Direction::from_index((self.index() + 1) % 6)
    }

    /// Rotate one step clockwise (`d−1`): the second leg of the emergency
    /// route around this link.
    #[inline]
    pub const fn rotate_cw(self) -> Direction {
        Direction::from_index((self.index() + 5) % 6)
    }

    /// The axial coordinate delta of one hop in this direction.
    #[inline]
    pub const fn delta(self) -> (i64, i64) {
        match self {
            Direction::East => (1, 0),
            Direction::NorthEast => (1, 1),
            Direction::North => (0, 1),
            Direction::West => (-1, 0),
            Direction::SouthWest => (-1, -1),
            Direction::South => (0, -1),
        }
    }

    /// The two emergency-route legs around this (failed/congested) link:
    /// the two other sides of a mesh triangle (Fig. 8).
    #[inline]
    pub const fn emergency_legs(self) -> (Direction, Direction) {
        (self.rotate_ccw(), self.rotate_cw())
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::NorthEast => "NE",
            Direction::North => "N",
            Direction::West => "W",
            Direction::SouthWest => "SW",
            Direction::South => "S",
        };
        f.pad(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for d in ALL_DIRECTIONS {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn opposite_is_involution_and_negates_delta() {
        for d in ALL_DIRECTIONS {
            assert_eq!(d.opposite().opposite(), d);
            let (dx, dy) = d.delta();
            let (ox, oy) = d.opposite().delta();
            assert_eq!((dx + ox, dy + oy), (0, 0));
        }
    }

    #[test]
    fn rotations_are_inverse() {
        for d in ALL_DIRECTIONS {
            assert_eq!(d.rotate_ccw().rotate_cw(), d);
            assert_eq!(d.rotate_cw().rotate_ccw(), d);
        }
    }

    #[test]
    fn emergency_legs_close_the_triangle() {
        // The paper's Fig. 8 detour: going around legs (d+1) then (d−1)
        // must land on the same node as the direct hop d.
        for d in ALL_DIRECTIONS {
            let (a, b) = d.emergency_legs();
            let (dx, dy) = d.delta();
            let (ax, ay) = a.delta();
            let (bx, by) = b.delta();
            assert_eq!((ax + bx, ay + by), (dx, dy), "triangle broken for {d}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Direction::East.to_string(), "E");
        assert_eq!(Direction::SouthWest.to_string(), "SW");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_large() {
        let _ = Direction::from_index(6);
    }
}
