//! The SpiNNaker packet: "a 40-bit packet that contains 8 bits of packet
//! management data and a 32-bit identifier of the neuron that fired" (§4),
//! with an optional 32-bit payload used by system traffic.

/// The three packet types the interconnect fabric and router support
/// (§5.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Multicast: conveys a neural spike event; routed by the ternary
    /// key/mask table. The 32-bit content word is the AER identifier of
    /// the neuron that fired.
    Multicast,
    /// Point-to-point: system management traffic with 16-bit source and
    /// destination node addresses, routed algorithmically.
    PointToPoint,
    /// Nearest-neighbour: reaches one of the six directly connected
    /// chips; used for boot, flood-fill and fault recovery.
    NearestNeighbour,
}

impl PacketKind {
    const fn code(self) -> u8 {
        match self {
            PacketKind::Multicast => 0,
            PacketKind::PointToPoint => 1,
            PacketKind::NearestNeighbour => 2,
        }
    }

    const fn from_code(code: u8) -> Option<PacketKind> {
        match code {
            0 => Some(PacketKind::Multicast),
            1 => Some(PacketKind::PointToPoint),
            2 => Some(PacketKind::NearestNeighbour),
            _ => None,
        }
    }
}

/// The 2-bit emergency-routing state carried in the packet header
/// (§5.3, Fig. 8).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum EmergencyState {
    /// Normal routing.
    #[default]
    Normal,
    /// First leg of an emergency detour (sent out link `d+1` instead of a
    /// blocked link `d`).
    FirstLeg,
    /// Second leg (the receiving router forwards out `d−1` to close the
    /// triangle).
    SecondLeg,
}

impl EmergencyState {
    const fn code(self) -> u8 {
        match self {
            EmergencyState::Normal => 0,
            EmergencyState::FirstLeg => 1,
            EmergencyState::SecondLeg => 2,
        }
    }

    const fn from_code(code: u8) -> Option<EmergencyState> {
        match code {
            0 => Some(EmergencyState::Normal),
            1 => Some(EmergencyState::FirstLeg),
            2 => Some(EmergencyState::SecondLeg),
            _ => None,
        }
    }
}

/// One SpiNNaker packet.
///
/// # Example
///
/// ```
/// use spinn_noc::packet::{Packet, PacketKind, EmergencyState};
///
/// let spike = Packet::multicast(0x0000_2A01);
/// assert_eq!(spike.kind, PacketKind::Multicast);
/// let bits = spike.encode();
/// assert_eq!(Packet::decode(bits).unwrap(), spike);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Packet type.
    pub kind: PacketKind,
    /// Emergency-routing state (multicast packets only).
    pub emergency: EmergencyState,
    /// 2-bit launch-timestamp phase, used to age out packets that have
    /// circulated too long.
    pub timestamp: u8,
    /// The 32-bit content word: AER key (mc), `src << 16 | dst` (p2p), or
    /// an opcode/address word (nn).
    pub key: u32,
    /// Optional 32-bit payload (system traffic, nn boot data).
    pub payload: Option<u32>,
}

impl Packet {
    /// A multicast spike packet carrying an AER routing key.
    pub fn multicast(key: u32) -> Packet {
        Packet {
            kind: PacketKind::Multicast,
            emergency: EmergencyState::Normal,
            timestamp: 0,
            key,
            payload: None,
        }
    }

    /// A point-to-point packet from node address `src` to `dst` with a
    /// payload word.
    pub fn p2p(src: u16, dst: u16, payload: u32) -> Packet {
        Packet {
            kind: PacketKind::PointToPoint,
            emergency: EmergencyState::Normal,
            timestamp: 0,
            key: (src as u32) << 16 | dst as u32,
            payload: Some(payload),
        }
    }

    /// A nearest-neighbour packet with an opcode/address key and payload.
    pub fn nn(key: u32, payload: u32) -> Packet {
        Packet {
            kind: PacketKind::NearestNeighbour,
            emergency: EmergencyState::Normal,
            timestamp: 0,
            key,
            payload: Some(payload),
        }
    }

    /// The p2p source node address.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not point-to-point.
    pub fn p2p_src(&self) -> u16 {
        assert_eq!(self.kind, PacketKind::PointToPoint, "not a p2p packet");
        (self.key >> 16) as u16
    }

    /// The p2p destination node address.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not point-to-point.
    pub fn p2p_dst(&self) -> u16 {
        assert_eq!(self.kind, PacketKind::PointToPoint, "not a p2p packet");
        self.key as u16
    }

    /// The shortest possible wire format (a payload-less packet), bits.
    pub const MIN_WIRE_BITS: u32 = 40;

    /// Number of bits on the wire: 40, or 72 with payload.
    pub fn wire_bits(&self) -> u32 {
        if self.payload.is_some() {
            72
        } else {
            Self::MIN_WIRE_BITS
        }
    }

    /// Packs the packet into the 40-bit (or 72-bit) wire format, returned
    /// in the low bits of a `u128`:
    /// `header[7:0] | key << 8 | payload << 40`.
    ///
    /// Header layout: `[7:6]` type, `[5:4]` emergency, `[3:2]` timestamp,
    /// `\[1\]` payload-present, `\[0\]` odd parity over the whole packet.
    pub fn encode(&self) -> u128 {
        let mut header: u8 = (self.kind.code() << 6)
            | (self.emergency.code() << 4)
            | ((self.timestamp & 0b11) << 2)
            | ((self.payload.is_some() as u8) << 1);
        let mut bits: u128 = (self.key as u128) << 8;
        if let Some(p) = self.payload {
            bits |= (p as u128) << 40;
        }
        // Odd parity across header+content so the wire word has odd weight.
        let ones = (bits | header as u128).count_ones();
        if ones.is_multiple_of(2) {
            header |= 1;
        }
        bits | header as u128
    }

    /// Decodes a wire word produced by [`Packet::encode`].
    ///
    /// Returns `None` on parity failure or an invalid type/emergency code
    /// (a corrupted packet, which real routers drop with an error
    /// interrupt).
    pub fn decode(bits: u128) -> Option<Packet> {
        if bits.count_ones().is_multiple_of(2) {
            return None; // parity error
        }
        let header = (bits & 0xFF) as u8;
        let kind = PacketKind::from_code(header >> 6)?;
        let emergency = EmergencyState::from_code((header >> 4) & 0b11)?;
        let timestamp = (header >> 2) & 0b11;
        let key = ((bits >> 8) & 0xFFFF_FFFF) as u32;
        let payload = if header & 0b10 != 0 {
            Some(((bits >> 40) & 0xFFFF_FFFF) as u32)
        } else {
            if bits >> 40 != 0 {
                return None; // stray bits beyond a 40-bit packet
            }
            None
        };
        Some(Packet {
            kind,
            emergency,
            timestamp,
            key,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let mc = Packet::multicast(42);
        assert_eq!(mc.kind, PacketKind::Multicast);
        assert_eq!(mc.key, 42);
        assert_eq!(mc.wire_bits(), 40);

        let p = Packet::p2p(3, 9, 0xDEAD);
        assert_eq!(p.p2p_src(), 3);
        assert_eq!(p.p2p_dst(), 9);
        assert_eq!(p.wire_bits(), 72);

        let n = Packet::nn(7, 8);
        assert_eq!(n.kind, PacketKind::NearestNeighbour);
        assert_eq!(n.payload, Some(8));
    }

    #[test]
    #[should_panic(expected = "not a p2p packet")]
    fn p2p_accessors_guarded() {
        Packet::multicast(1).p2p_src();
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases = [
            Packet::multicast(0),
            Packet::multicast(u32::MAX),
            Packet::p2p(0xFFFF, 0, 123),
            Packet::nn(1, u32::MAX),
            Packet {
                kind: PacketKind::Multicast,
                emergency: EmergencyState::FirstLeg,
                timestamp: 3,
                key: 0xCAFE_BABE,
                payload: None,
            },
            Packet {
                kind: PacketKind::Multicast,
                emergency: EmergencyState::SecondLeg,
                timestamp: 1,
                key: 7,
                payload: Some(9),
            },
        ];
        for p in cases {
            assert_eq!(Packet::decode(p.encode()), Some(p), "case {p:?}");
        }
    }

    #[test]
    fn single_bit_flip_detected() {
        let p = Packet::multicast(0x1234_5678);
        let bits = p.encode();
        for i in 0..40 {
            let corrupt = bits ^ (1u128 << i);
            // Parity catches every single-bit flip.
            assert_eq!(Packet::decode(corrupt), None, "flip at bit {i} undetected");
        }
    }

    #[test]
    fn stray_high_bits_rejected() {
        let p = Packet::multicast(5);
        let bits = p.encode() | (1u128 << 50) | (1u128 << 51);
        assert_eq!(Packet::decode(bits), None);
    }

    #[test]
    fn wire_weight_is_odd() {
        for key in [0u32, 1, 0xFFFF_FFFF, 0xA5A5_A5A5] {
            assert_eq!(Packet::multicast(key).encode().count_ones() % 2, 1);
        }
    }
}
