//! # spinn-noc — SpiNNaker's packet-switched communications fabric
//!
//! Packet-level models of the structures §4 and §5.3 of the paper build
//! the machine around (1 tick = 1 ns):
//!
//! * [`packet`] — the 40-bit packet: 8 bits of management data plus a
//!   32-bit content word (the AER source-neuron identifier for multicast
//!   packets), with an optional 32-bit payload; three packet types
//!   (multicast / point-to-point / nearest-neighbour) and the 2-bit
//!   emergency-routing state.
//! * [`direction`] — the six inter-chip link directions of the triangular
//!   mesh (E, NE, N, W, SW, S) and their algebra.
//! * [`mesh`] — the 2-D toroidal triangular-facet mesh (Fig. 2): hex
//!   distance, neighbours and the algorithmic point-to-point next hop.
//! * [`table`] — the ternary-CAM multicast routing table: `(key, mask) →
//!   route set` entries with first-match priority, plus default routing
//!   (a packet with no matching entry continues straight through).
//! * [`compiled`] — the hot-path form of the table: entries bucketed by
//!   ternary mask into hash maps, one probe per distinct mask instead of
//!   one compare per entry, with identical first-match semantics.
//! * [`router`] — one node's multicast packet router: output-link queues,
//!   blocked-link detection with programmable `wait1`/`wait2`,
//!   **emergency routing** around the two other sides of a mesh triangle
//!   (Fig. 8), and last-resort packet dropping with monitor notification
//!   (§5.3: "no Router will get into a state where it persistently
//!   refuses to accept incoming packets").
//! * [`fabric`] — the whole-machine fabric: routers wired by inter-chip
//!   links with failure injection, plus a standalone simulation model and
//!   traffic generators for the routing experiments (E3, E4, E8).
//!
//! # Example
//!
//! ```
//! use spinn_noc::mesh::{Torus, NodeCoord};
//! use spinn_noc::direction::Direction;
//!
//! let mesh = Torus::new(8, 8);
//! let a = NodeCoord::new(0, 0);
//! assert_eq!(mesh.neighbour(a, Direction::NorthEast), NodeCoord::new(1, 1));
//! // Toroidal wrap:
//! assert_eq!(mesh.neighbour(a, Direction::West), NodeCoord::new(7, 0));
//! assert_eq!(mesh.hex_distance(a, NodeCoord::new(2, 2)), 2); // one diagonal per step
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod direction;
pub mod fabric;
pub mod mesh;
pub mod packet;
pub mod router;
pub mod table;

pub use compiled::CompiledTable;
pub use direction::Direction;
pub use fabric::{Delivery, Fabric, FabricConfig, NocEvent, NocScheduler, Partition};
pub use mesh::{NodeCoord, Torus};
pub use packet::{EmergencyState, Packet, PacketKind};
pub use router::{Router, RouterConfig, RouterStats};
pub use table::{McTable, McTableEntry, RouteSet};
