//! The whole-machine communications fabric: every node's router wired to
//! its six neighbours, with link failure injection, congestion, emergency
//! routing and packet dropping (§5.3, Fig. 8).
//!
//! [`Fabric`] is a *composable* component: it owns all router/link state
//! and reacts to [`NocEvent`]s, but schedules follow-on events through the
//! [`NocScheduler`] trait, so it can be embedded in a larger simulation
//! model (the full machine in `spinn-machine` wraps `NocEvent` in its own
//! event enum). [`FabricSim`] is a self-contained [`spinn_sim::Model`] for
//! running the fabric standalone in the routing experiments.

use std::collections::VecDeque;

use spinn_obs::{Counter, CounterShard};
use spinn_sim::{Context, Histogram, Model};

use crate::direction::Direction;
use crate::mesh::{NodeCoord, Torus};
use crate::packet::{EmergencyState, Packet, PacketKind};
use crate::router::{Port, RouteDecision, Router, RouterConfig, RouterStats};
use crate::table::{McTableEntry, RouteSet};

/// Scheduling interface the fabric uses to emit future events.
pub trait NocScheduler {
    /// Schedules `ev` to fire `delay_ns` from now.
    fn schedule(&mut self, delay_ns: u64, ev: NocEvent);
}

/// Adapter that lets an embedding simulation (whose event enum wraps
/// [`NocEvent`]) hand its [`Context`] to the fabric.
///
/// ```
/// use spinn_noc::fabric::{CtxScheduler, NocEvent};
/// # use spinn_sim::{Context, Model};
/// enum MyEvent { Noc(NocEvent), Other }
/// # struct M;
/// # impl Model for M {
/// #     type Event = MyEvent;
/// fn handle(&mut self, ctx: &mut Context<MyEvent>, ev: MyEvent) {
///     let mut sched = CtxScheduler::new(ctx, MyEvent::Noc);
///     // fabric.handle(now, noc_event, &mut sched);
///     # let _ = (&mut sched, ev);
/// }
/// # }
/// ```
pub struct CtxScheduler<'a, E> {
    ctx: &'a mut Context<E>,
    wrap: fn(NocEvent) -> E,
}

impl<'a, E> CtxScheduler<'a, E> {
    /// Wraps a simulation context with the embedding's `NocEvent`
    /// constructor.
    pub fn new(ctx: &'a mut Context<E>, wrap: fn(NocEvent) -> E) -> Self {
        CtxScheduler { ctx, wrap }
    }
}

impl<E> NocScheduler for CtxScheduler<'_, E> {
    fn schedule(&mut self, delay_ns: u64, ev: NocEvent) {
        self.ctx.schedule_in(delay_ns, (self.wrap)(ev));
    }
}

/// A packet in flight, with its provenance for latency accounting.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct InFlight {
    /// The packet itself.
    pub packet: Packet,
    /// Inter-chip hops taken so far.
    pub hops: u32,
    /// Injection timestamp, ns.
    pub injected_at: u64,
}

/// Events the fabric reacts to.
#[derive(Copy, Clone, Debug)]
pub enum NocEvent {
    /// A packet arrives at `node`'s router over the link on port `port`.
    Arrive {
        /// Dense node id.
        node: u32,
        /// Arrival port (link direction index at the receiving node).
        port: u8,
        /// The packet and its flight record.
        flight: InFlight,
    },
    /// An output link finished serializing a packet.
    LinkFree {
        /// Dense node id.
        node: u32,
        /// Output link direction index.
        dir: u8,
    },
    /// A packet blocked on an output link re-attempts. The blocked packet
    /// effectively waits *continuously* in hardware; the model
    /// approximates that with [`RETRY_SLICES`] re-attempts per wait
    /// phase.
    Retry {
        /// Dense node id.
        node: u32,
        /// The blocked output link direction index.
        dir: u8,
        /// 1 = within wait1 (ends by invoking emergency routing);
        /// 2 = within wait2 (ends by dropping the packet).
        phase: u8,
        /// Re-attempts remaining in this phase.
        left: u8,
        /// The blocked packet.
        flight: InFlight,
    },
}

/// Number of discrete re-attempts used to approximate a continuously
/// waiting blocked packet within each wait phase.
pub const RETRY_SLICES: u8 = 4;

/// Fabric-wide configuration.
#[derive(Copy, Clone, Debug)]
pub struct FabricConfig {
    /// Mesh width in chips.
    pub width: u32,
    /// Mesh height in chips.
    pub height: u32,
    /// Inter-chip link serialization cost, ns per bit (paper-era links
    /// move a 40-bit packet in ~160 ns).
    pub ns_per_bit: u64,
    /// Link propagation delay, ns.
    pub link_prop_ns: u64,
    /// Router pipeline latency, ns.
    pub router_latency_ns: u64,
    /// Output-link queue capacity, packets.
    pub out_queue_cap: usize,
    /// Per-router configuration (timeouts, table size, emergency switch).
    pub router: RouterConfig,
    /// Hop limit: packets exceeding it are dropped as aged (guards
    /// against routing loops from bad tables).
    pub max_hops: u32,
}

impl FabricConfig {
    /// A fabric over a `width x height` torus with paper-era defaults.
    pub fn new(width: u32, height: u32) -> Self {
        FabricConfig {
            width,
            height,
            ns_per_bit: 4,
            link_prop_ns: 20,
            router_latency_ns: 10,
            out_queue_cap: 4,
            router: RouterConfig::default(),
            max_hops: 128,
        }
    }

    /// The smallest possible delay between a packet leaving one chip and
    /// arriving at its neighbour: serialization of the shortest (40-bit)
    /// packet plus wire propagation plus the receiving router's pipeline.
    ///
    /// This is the *lookahead* of sharded execution (`spinn-par`): a
    /// conservative window of this length can be simulated on every
    /// shard independently, because no cross-chip — hence no cross-shard
    /// — event can be generated closer to the present than this.
    pub fn min_remote_delay_ns(&self) -> u64 {
        Packet::MIN_WIRE_BITS as u64 * self.ns_per_bit + self.link_prop_ns + self.router_latency_ns
    }
}

/// Chip-ownership map for sharded execution: which shard simulates each
/// node of the torus.
#[derive(Clone, Debug)]
pub struct Partition {
    owner: Vec<u32>,
    me: u32,
}

impl Partition {
    /// Builds a partition from a per-node owner table, for the shard
    /// `me`.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is empty or `me` owns no node.
    pub fn new(owner: Vec<u32>, me: u32) -> Self {
        assert!(!owner.is_empty(), "partition needs at least one node");
        assert!(
            owner.contains(&me),
            "shard {me} owns no node of the partition"
        );
        Partition { owner, me }
    }

    /// The shard that simulates dense node id `node`.
    pub fn owner_of(&self, node: usize) -> u32 {
        self.owner[node]
    }

    /// The shard this fabric instance belongs to.
    pub fn shard(&self) -> u32 {
        self.me
    }
}

/// A packet delivered to a node (to local cores for multicast, or to the
/// node's system software for p2p/nn).
#[derive(Copy, Clone, Debug)]
pub struct Delivery {
    /// Where it was delivered.
    pub node: NodeCoord,
    /// Local-core bitmask for multicast deliveries (0 for p2p/nn, which
    /// go to the monitor).
    pub cores: u32,
    /// The packet.
    pub packet: Packet,
    /// When the packet was injected, ns.
    pub injected_at_ns: u64,
    /// When it was delivered, ns.
    pub delivered_at_ns: u64,
    /// Inter-chip hops taken.
    pub hops: u32,
}

/// A packet the router gave up on (§5.3: after wait1 + wait2 it drops the
/// packet and informs the monitor processor).
#[derive(Copy, Clone, Debug)]
pub struct DroppedPacket {
    /// Node at which it was dropped.
    pub node: NodeCoord,
    /// The packet.
    pub packet: Packet,
    /// Drop time, ns.
    pub time_ns: u64,
}

#[derive(Clone, Debug, Default)]
struct LinkState {
    busy: bool,
    queue: VecDeque<InFlight>,
    failed: bool,
}

/// The machine-wide fabric component.
///
/// # Example
///
/// Standalone use via [`FabricSim`]:
///
/// ```
/// use spinn_noc::fabric::{FabricConfig, FabricSim};
/// use spinn_noc::mesh::NodeCoord;
/// use spinn_noc::packet::Packet;
/// use spinn_sim::Engine;
///
/// let mut sim = FabricSim::new(FabricConfig::new(4, 4));
/// // p2p packet from (0,0) to (2,2):
/// let p = Packet::p2p(FabricSim::p2p_addr(NodeCoord::new(0, 0)),
///                     FabricSim::p2p_addr(NodeCoord::new(2, 2)), 7);
/// let mut engine = Engine::new(sim);
/// engine.model_mut().queue_injection(0, NodeCoord::new(0, 0), p);
/// engine.schedule_at(spinn_sim::SimTime::ZERO, spinn_noc::fabric::FabricEvent::Pump);
/// engine.run_to_completion(Some(100_000));
/// assert_eq!(engine.model().delivered(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    torus: Torus,
    routers: Vec<Router>,
    links: Vec<LinkState>,
    deliveries: Vec<Delivery>,
    dropped: Vec<DroppedPacket>,
    partition: Option<Partition>,
    remote: Vec<(u64, u32, NocEvent)>,
    /// Telemetry counter handle (disabled by default: every increment is
    /// a `None`-check). Not part of checkpoint state.
    obs: CounterShard,
}

impl Fabric {
    /// Builds the fabric: one router per node, all links up.
    pub fn new(cfg: FabricConfig) -> Self {
        let torus = Torus::new(cfg.width, cfg.height);
        let n = torus.len();
        Fabric {
            cfg,
            torus,
            routers: (0..n).map(|_| Router::new(cfg.router)).collect(),
            links: (0..n * 6).map(|_| LinkState::default()).collect(),
            deliveries: Vec::new(),
            dropped: Vec::new(),
            partition: None,
            remote: Vec::new(),
            obs: CounterShard::default(),
        }
    }

    /// Installs a telemetry counter handle: the fabric counts routed
    /// packets by class ([`Counter::PacketsMc`], [`Counter::PacketsP2p`],
    /// [`Counter::PacketsNn`]), drops and emergency-route hops into it.
    /// The handle is shared (cloned from the owning model's
    /// [`spinn_obs::Observability`]) and is not checkpoint state.
    pub fn set_observability(&mut self, obs: CounterShard) {
        self.obs = obs;
    }

    /// Restricts this fabric instance to the nodes a shard owns: packets
    /// crossing onto a chip owned by another shard are diverted into the
    /// exchange buffer ([`Fabric::take_remote`]) instead of being
    /// scheduled locally.
    pub fn set_partition(&mut self, partition: Partition) {
        assert_eq!(
            partition.owner.len(),
            self.torus.len(),
            "partition size must match the torus"
        );
        self.partition = Some(partition);
    }

    /// Removes the partition (after shards are merged back together).
    pub fn clear_partition(&mut self) {
        self.partition = None;
    }

    /// The active partition, if sharded.
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Drains the cross-shard events diverted since the last call, as
    /// `(absolute arrival time ns, destination shard, event)`.
    pub fn take_remote(&mut self) -> Vec<(u64, u32, NocEvent)> {
        std::mem::take(&mut self.remote)
    }

    /// Adopts the per-node state (router + outgoing links) of every node
    /// owned by `shard` from another fabric instance — the merge step
    /// after a sharded run.
    pub fn adopt_owned(&mut self, other: &mut Fabric, shard: u32) {
        let part = other
            .partition
            .as_ref()
            .expect("adopt_owned needs a partitioned source");
        assert_eq!(part.owner.len(), self.torus.len());
        for id in 0..self.torus.len() {
            if part.owner[id] == shard {
                std::mem::swap(&mut self.routers[id], &mut other.routers[id]);
                for d in 0..6 {
                    std::mem::swap(&mut self.links[id * 6 + d], &mut other.links[id * 6 + d]);
                }
            }
        }
    }

    /// The mesh geometry.
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Mutable access to a node's router (e.g. to load routing tables).
    pub fn router_mut(&mut self, node: NodeCoord) -> &mut Router {
        let id = self.torus.id_of(node);
        &mut self.routers[id]
    }

    /// A node's router.
    pub fn router(&self, node: NodeCoord) -> &Router {
        &self.routers[self.torus.id_of(node)]
    }

    /// Sums router statistics over the whole machine.
    pub fn total_stats(&self) -> RouterStats {
        let mut t = RouterStats::default();
        for r in &self.routers {
            let s = &r.stats;
            t.mc_table_hits += s.mc_table_hits;
            t.mc_default_routed += s.mc_default_routed;
            t.mc_local_deliveries += s.mc_local_deliveries;
            t.mc_unroutable_local += s.mc_unroutable_local;
            t.p2p_forwarded += s.p2p_forwarded;
            t.p2p_delivered += s.p2p_delivered;
            t.nn_delivered += s.nn_delivered;
            t.emergency_reroutes += s.emergency_reroutes;
            t.emergency_second_legs += s.emergency_second_legs;
            t.dropped += s.dropped;
            t.aged_out += s.aged_out;
            // CAM occupancy is a high-water mark over routers, not a sum.
            t.table_peak_entries = t
                .table_peak_entries
                .max(s.table_peak_entries)
                .max(r.table.peak_len() as u64);
            t.table_capacity = t.table_capacity.max(r.table.capacity() as u64);
        }
        t
    }

    /// Fails the physical link between `node` and its neighbour in
    /// direction `d` (both directions of the cable).
    pub fn fail_link(&mut self, node: NodeCoord, d: Direction) {
        let id = self.torus.id_of(node);
        self.links[id * 6 + d.index()].failed = true;
        let peer = self.torus.neighbour(node, d);
        let pid = self.torus.id_of(peer);
        self.links[pid * 6 + d.opposite().index()].failed = true;
    }

    /// Restores a previously failed link.
    pub fn repair_link(&mut self, node: NodeCoord, d: Direction) {
        let id = self.torus.id_of(node);
        self.links[id * 6 + d.index()].failed = false;
        let peer = self.torus.neighbour(node, d);
        let pid = self.torus.id_of(peer);
        self.links[pid * 6 + d.opposite().index()].failed = false;
    }

    /// Whether the link out of `node` in direction `d` is failed.
    pub fn link_failed(&self, node: NodeCoord, d: Direction) -> bool {
        self.links[self.torus.id_of(node) * 6 + d.index()].failed
    }

    /// Every currently failed outgoing link as `(dense chip id,
    /// direction)`, in dense-id order. Both ends of a failed cable are
    /// listed (a cable fails in both directions), so the result feeds
    /// an avoid-set for route repair without further expansion.
    pub fn failed_links(&self) -> Vec<(u32, Direction)> {
        let mut out = Vec::new();
        for id in 0..self.torus.len() {
            for d in 0..6 {
                if self.links[id * 6 + d].failed {
                    out.push((id as u32, Direction::from_index(d)));
                }
            }
        }
        out
    }

    /// Current occupancy of an output-link queue (congestion probe).
    pub fn link_queue_len(&self, node: NodeCoord, d: Direction) -> usize {
        let ls = &self.links[self.torus.id_of(node) * 6 + d.index()];
        ls.queue.len() + ls.busy as usize
    }

    /// Drains the packets delivered since the last call.
    pub fn take_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Drains the delivered packets into `buf` (cleared first) by
    /// swapping buffers: unlike [`Fabric::take_deliveries`] this keeps
    /// the fabric's internal capacity, so a caller polling once per
    /// event never re-allocates on either side of the swap.
    pub fn swap_deliveries(&mut self, buf: &mut Vec<Delivery>) {
        buf.clear();
        std::mem::swap(&mut self.deliveries, buf);
    }

    /// Drains the packets dropped since the last call (the monitor
    /// processor can recover and re-issue them, §5.3).
    pub fn take_dropped(&mut self) -> Vec<DroppedPacket> {
        std::mem::take(&mut self.dropped)
    }

    /// Buffer-swapping variant of [`Fabric::take_dropped`]; see
    /// [`Fabric::swap_deliveries`].
    pub fn swap_dropped(&mut self, buf: &mut Vec<DroppedPacket>) {
        buf.clear();
        std::mem::swap(&mut self.dropped, buf);
    }

    /// Injects a locally sourced multicast or p2p packet at `node`.
    ///
    /// # Panics
    ///
    /// Panics for nearest-neighbour packets: use [`Fabric::inject_nn`].
    pub fn inject(
        &mut self,
        now: u64,
        node: NodeCoord,
        packet: Packet,
        sched: &mut impl NocScheduler,
    ) {
        let flight = InFlight {
            packet,
            hops: 0,
            injected_at: now,
        };
        match packet.kind {
            PacketKind::Multicast => self.route_mc(now, node, Port::Local, flight, sched),
            PacketKind::PointToPoint => self.route_p2p(now, node, flight, sched),
            PacketKind::NearestNeighbour => {
                panic!("nearest-neighbour packets need a direction: use inject_nn")
            }
        }
    }

    /// Injects a nearest-neighbour packet out of `node` on link `d`.
    pub fn inject_nn(
        &mut self,
        now: u64,
        node: NodeCoord,
        d: Direction,
        packet: Packet,
        sched: &mut impl NocScheduler,
    ) {
        let flight = InFlight {
            packet,
            hops: 0,
            injected_at: now,
        };
        self.output(now, self.torus.id_of(node), d, flight, sched);
    }

    /// Reacts to one fabric event.
    pub fn handle(&mut self, now: u64, ev: NocEvent, sched: &mut impl NocScheduler) {
        match ev {
            NocEvent::Arrive { node, port, flight } => self.on_arrive(
                now,
                node as usize,
                Direction::from_index(port as usize),
                flight,
                sched,
            ),
            NocEvent::LinkFree { node, dir } => {
                self.on_link_free(now, node as usize, dir as usize, sched)
            }
            NocEvent::Retry {
                node,
                dir,
                phase,
                left,
                flight,
            } => self.on_retry(
                now,
                node as usize,
                Direction::from_index(dir as usize),
                phase,
                left,
                flight,
                sched,
            ),
        }
    }

    // ------------------------------------------------------------------
    // internals

    fn on_arrive(
        &mut self,
        now: u64,
        node: usize,
        port: Direction,
        mut flight: InFlight,
        sched: &mut impl NocScheduler,
    ) {
        if flight.hops > self.cfg.max_hops {
            self.routers[node].stats.aged_out += 1;
            self.obs.add(Counter::PacketsDropped, 1);
            return;
        }
        let coord = self.torus.coord_of(node);
        match flight.packet.kind {
            PacketKind::Multicast => match flight.packet.emergency {
                EmergencyState::FirstLeg => {
                    // Close the triangle: forward out (arrival port + 1)
                    // without consulting the table (Fig. 8).
                    let out = Router::second_leg_output(port);
                    flight.packet.emergency = EmergencyState::SecondLeg;
                    self.routers[node].stats.emergency_second_legs += 1;
                    self.obs.add(Counter::EmergencyHops, 1);
                    self.output(now, node, out, flight, sched);
                }
                EmergencyState::SecondLeg => {
                    flight.packet.emergency = EmergencyState::Normal;
                    let eff = Router::effective_port_after_detour(port);
                    self.route_mc(now, coord, Port::Link(eff), flight, sched);
                }
                EmergencyState::Normal => {
                    self.route_mc(now, coord, Port::Link(port), flight, sched)
                }
            },
            PacketKind::PointToPoint => self.route_p2p(now, coord, flight, sched),
            PacketKind::NearestNeighbour => {
                self.routers[node].stats.nn_delivered += 1;
                self.obs.add(Counter::PacketsNn, 1);
                self.deliveries.push(Delivery {
                    node: coord,
                    cores: 0,
                    packet: flight.packet,
                    injected_at_ns: flight.injected_at,
                    delivered_at_ns: now,
                    hops: flight.hops,
                });
            }
        }
    }

    fn route_mc(
        &mut self,
        now: u64,
        node: NodeCoord,
        port: Port,
        flight: InFlight,
        sched: &mut impl NocScheduler,
    ) {
        let id = self.torus.id_of(node);
        match self.routers[id].decide_mc(flight.packet.key, port) {
            RouteDecision::Multicast(route) => {
                self.obs.add(Counter::PacketsMc, 1);
                if route.core_mask() != 0 {
                    self.routers[id].stats.mc_local_deliveries += 1;
                    self.deliveries.push(Delivery {
                        node,
                        cores: route.core_mask(),
                        packet: flight.packet,
                        injected_at_ns: flight.injected_at,
                        delivered_at_ns: now,
                        hops: flight.hops,
                    });
                }
                for link in route.links() {
                    self.output(now, id, link, flight, sched);
                }
            }
            RouteDecision::UnroutableLocal => {
                self.obs.add(Counter::PacketsDropped, 1);
                self.dropped.push(DroppedPacket {
                    node,
                    packet: flight.packet,
                    time_ns: now,
                });
            }
            _ => unreachable!("decide_mc returns Multicast or UnroutableLocal"),
        }
    }

    fn route_p2p(
        &mut self,
        now: u64,
        node: NodeCoord,
        flight: InFlight,
        sched: &mut impl NocScheduler,
    ) {
        let dest = p2p_coord(flight.packet.p2p_dst());
        let id = self.torus.id_of(node);
        if node == dest {
            self.routers[id].stats.p2p_delivered += 1;
            self.obs.add(Counter::PacketsP2p, 1);
            self.deliveries.push(Delivery {
                node,
                cores: 0,
                packet: flight.packet,
                injected_at_ns: flight.injected_at,
                delivered_at_ns: now,
                hops: flight.hops,
            });
            return;
        }
        self.routers[id].stats.p2p_forwarded += 1;
        self.obs.add(Counter::PacketsP2p, 1);
        let next = self
            .torus
            .p2p_next_hop(node, dest)
            .expect("non-equal nodes have a next hop");
        self.output(now, id, next, flight, sched);
    }

    /// Attempts to put a packet on an output link; on blockage, starts
    /// the wait1 timer.
    fn output(
        &mut self,
        now: u64,
        node: usize,
        dir: Direction,
        flight: InFlight,
        sched: &mut impl NocScheduler,
    ) {
        if self.try_enqueue(now, node, dir, flight, sched) {
            return;
        }
        let slice = (self.routers[node].config().wait1_ns / RETRY_SLICES as u64).max(1);
        sched.schedule(
            slice,
            NocEvent::Retry {
                node: node as u32,
                dir: dir.index() as u8,
                phase: 1,
                left: RETRY_SLICES - 1,
                flight,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_retry(
        &mut self,
        now: u64,
        node: usize,
        dir: Direction,
        phase: u8,
        left: u8,
        flight: InFlight,
        sched: &mut impl NocScheduler,
    ) {
        if self.try_enqueue(now, node, dir, flight, sched) {
            return;
        }
        let cfg = *self.routers[node].config();
        let can_emergency = cfg.emergency_enabled
            && flight.packet.kind == PacketKind::Multicast
            && flight.packet.emergency == EmergencyState::Normal;
        // During wait2 the router keeps attempting the emergency detour as
        // well ("then it tries emergency routing for a programmable
        // time", §5.3).
        if can_emergency && (phase == 2 || left == 0) {
            let mut redirected = flight;
            redirected.packet.emergency = EmergencyState::FirstLeg;
            let leg = dir.rotate_ccw();
            if self.try_enqueue(now, node, leg, redirected, sched) {
                self.routers[node].stats.emergency_reroutes += 1;
                self.obs.add(Counter::EmergencyHops, 1);
                return;
            }
        }
        if left > 0 {
            let wait = if phase == 1 {
                cfg.wait1_ns
            } else {
                cfg.wait2_ns
            };
            let slice = (wait / RETRY_SLICES as u64).max(1);
            sched.schedule(
                slice,
                NocEvent::Retry {
                    node: node as u32,
                    dir: dir.index() as u8,
                    phase,
                    left: left - 1,
                    flight,
                },
            );
        } else if phase == 1 {
            let slice = (cfg.wait2_ns / RETRY_SLICES as u64).max(1);
            sched.schedule(
                slice,
                NocEvent::Retry {
                    node: node as u32,
                    dir: dir.index() as u8,
                    phase: 2,
                    left: RETRY_SLICES - 1,
                    flight,
                },
            );
        } else {
            // §5.3: "then it gives up and drops the packet. The local
            // Monitor Processor is informed of the failure."
            self.routers[node].stats.dropped += 1;
            self.obs.add(Counter::PacketsDropped, 1);
            self.dropped.push(DroppedPacket {
                node: self.torus.coord_of(node),
                packet: flight.packet,
                time_ns: now,
            });
        }
    }

    /// True if the packet was accepted (link idle or queue has room).
    fn try_enqueue(
        &mut self,
        now: u64,
        node: usize,
        dir: Direction,
        flight: InFlight,
        sched: &mut impl NocScheduler,
    ) -> bool {
        let cap = self.cfg.out_queue_cap;
        let ls = &mut self.links[node * 6 + dir.index()];
        if ls.failed {
            return false;
        }
        if !ls.busy {
            ls.busy = true;
            self.start_tx(now, node, dir, flight, sched);
            true
        } else if ls.queue.len() < cap {
            ls.queue.push_back(flight);
            true
        } else {
            false
        }
    }

    fn start_tx(
        &mut self,
        now: u64,
        node: usize,
        dir: Direction,
        mut flight: InFlight,
        sched: &mut impl NocScheduler,
    ) {
        let ser = flight.packet.wire_bits() as u64 * self.cfg.ns_per_bit;
        sched.schedule(
            ser,
            NocEvent::LinkFree {
                node: node as u32,
                dir: dir.index() as u8,
            },
        );
        let peer = self.torus.neighbour(self.torus.coord_of(node), dir);
        let peer_id = self.torus.id_of(peer);
        flight.hops += 1;
        let delay = ser + self.cfg.link_prop_ns + self.cfg.router_latency_ns;
        debug_assert!(delay >= self.cfg.min_remote_delay_ns());
        let arrive = NocEvent::Arrive {
            node: peer_id as u32,
            port: dir.opposite().index() as u8,
            flight,
        };
        match &self.partition {
            // Cross-shard hop: divert into the exchange buffer with its
            // absolute arrival time; the parallel driver delivers it to
            // the owning shard at the next window barrier.
            Some(p) if p.owner_of(peer_id) != p.shard() => {
                self.remote.push((now + delay, p.owner_of(peer_id), arrive));
            }
            _ => sched.schedule(delay, arrive),
        }
    }

    fn on_link_free(&mut self, now: u64, node: usize, dir: usize, sched: &mut impl NocScheduler) {
        let ls = &mut self.links[node * 6 + dir];
        if let Some(next) = ls.queue.pop_front() {
            self.start_tx(now, node, Direction::from_index(dir), next, sched);
        } else {
            ls.busy = false;
        }
    }

    // ------------------------------------------------------------------
    // checkpoint/restore

    /// Serializes the fabric's mutable state — routing tables, router
    /// statistics, link failure/busy/queue state — into `enc`.
    ///
    /// Must be called at a drained instant: delivered/dropped packets
    /// polled, no partition active, no cross-shard events buffered (the
    /// machine's segment boundaries guarantee all three).
    pub fn encode_state(&self, enc: &mut spinn_sim::wire::Enc) {
        debug_assert!(
            self.deliveries.is_empty(),
            "undelivered packets at checkpoint"
        );
        debug_assert!(self.dropped.is_empty(), "unpolled drops at checkpoint");
        debug_assert!(
            self.remote.is_empty(),
            "buffered remote events at checkpoint"
        );
        enc.seq(self.routers.len());
        for r in &self.routers {
            enc.seq(r.table.len());
            for e in r.table.iter() {
                enc.u32(e.key).u32(e.mask).u32(e.route.bits());
            }
            enc.u64(r.table.peak_len() as u64);
            let s = &r.stats;
            for v in [
                s.mc_table_hits,
                s.mc_default_routed,
                s.mc_local_deliveries,
                s.mc_unroutable_local,
                s.p2p_forwarded,
                s.p2p_delivered,
                s.nn_delivered,
                s.emergency_reroutes,
                s.emergency_second_legs,
                s.dropped,
                s.aged_out,
                s.table_peak_entries,
                s.table_capacity,
            ] {
                enc.u64(v);
            }
        }
        for ls in &self.links {
            enc.bool(ls.failed).bool(ls.busy);
            enc.seq(ls.queue.len());
            for f in &ls.queue {
                encode_flight(enc, f);
            }
        }
    }

    /// Restores [`Fabric::encode_state`] onto this fabric, overwriting
    /// every router and link. The fabric must have the same geometry
    /// and configuration as the one that was encoded.
    ///
    /// # Errors
    ///
    /// Returns a [`spinn_sim::wire::WireError`] on truncated or corrupt
    /// input, or if the node count does not match this fabric.
    pub fn apply_state(
        &mut self,
        dec: &mut spinn_sim::wire::Dec<'_>,
    ) -> Result<(), spinn_sim::wire::WireError> {
        use spinn_sim::wire::WireError;
        let n = dec.seq(1)?;
        if n != self.routers.len() {
            return Err(WireError::Corrupt("fabric node count"));
        }
        for r in self.routers.iter_mut() {
            let mut table = crate::table::McTable::new(r.table.capacity());
            let entries = dec.seq(12)?;
            for _ in 0..entries {
                let key = dec.u32()?;
                let mask = dec.u32()?;
                let route = RouteSet::from_bits(dec.u32()?);
                table
                    .insert(McTableEntry { key, mask, route })
                    .map_err(|_| WireError::Corrupt("routing table overflow"))?;
            }
            table.restore_peak(dec.u64()? as usize);
            r.table = table;
            let s = &mut r.stats;
            for v in [
                &mut s.mc_table_hits,
                &mut s.mc_default_routed,
                &mut s.mc_local_deliveries,
                &mut s.mc_unroutable_local,
                &mut s.p2p_forwarded,
                &mut s.p2p_delivered,
                &mut s.nn_delivered,
                &mut s.emergency_reroutes,
                &mut s.emergency_second_legs,
                &mut s.dropped,
                &mut s.aged_out,
                &mut s.table_peak_entries,
                &mut s.table_capacity,
            ] {
                *v = dec.u64()?;
            }
        }
        for ls in self.links.iter_mut() {
            ls.failed = dec.bool()?;
            ls.busy = dec.bool()?;
            ls.queue.clear();
            let qn = dec.seq(28)?;
            for _ in 0..qn {
                ls.queue.push_back(decode_flight(dec)?);
            }
        }
        self.deliveries.clear();
        self.dropped.clear();
        self.remote.clear();
        Ok(())
    }
}

/// Serializes an in-flight packet (wire word + flight record).
pub fn encode_flight(enc: &mut spinn_sim::wire::Enc, f: &InFlight) {
    enc.u128(f.packet.encode());
    enc.u32(f.hops).u64(f.injected_at);
}

/// Decodes an [`encode_flight`] record.
pub fn decode_flight(
    dec: &mut spinn_sim::wire::Dec<'_>,
) -> Result<InFlight, spinn_sim::wire::WireError> {
    let packet = Packet::decode(dec.u128()?)
        .ok_or(spinn_sim::wire::WireError::Corrupt("packet wire word"))?;
    Ok(InFlight {
        packet,
        hops: dec.u32()?,
        injected_at: dec.u64()?,
    })
}

/// The 16-bit p2p address of a node coordinate (`x << 8 | y`).
pub fn p2p_addr(c: NodeCoord) -> u16 {
    debug_assert!(c.x < 256 && c.y < 256);
    (c.x as u16) << 8 | c.y as u16
}

/// The node coordinate of a 16-bit p2p address.
pub fn p2p_coord(addr: u16) -> NodeCoord {
    NodeCoord::new((addr >> 8) as u32, (addr & 0xFF) as u32)
}

// ----------------------------------------------------------------------
// Standalone simulation wrapper

/// Events of the standalone fabric simulation.
#[derive(Copy, Clone, Debug)]
pub enum FabricEvent {
    /// An internal fabric event.
    Noc(NocEvent),
    /// Drain the injection queue entries that are due.
    Pump,
}

impl NocScheduler for Context<FabricEvent> {
    fn schedule(&mut self, delay_ns: u64, ev: NocEvent) {
        self.schedule_in(delay_ns, FabricEvent::Noc(ev));
    }
}

/// A self-contained fabric simulation: drives [`Fabric`] on the event
/// kernel, with a queue of timed packet injections and latency recording.
/// Used by the routing experiments (E3, E4, E8) and the integration
/// tests.
#[derive(Debug)]
pub struct FabricSim {
    /// The fabric under simulation.
    pub fabric: Fabric,
    injections: VecDeque<(u64, NodeCoord, Packet)>,
    latency: Histogram,
    delivered: u64,
    deliveries_log: Option<Vec<Delivery>>,
}

impl FabricSim {
    /// Creates a simulation over a fresh fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        FabricSim {
            fabric: Fabric::new(cfg),
            injections: VecDeque::new(),
            latency: Histogram::new(4000, 20), // 20 ns buckets to 80 us
            delivered: 0,
            deliveries_log: None,
        }
    }

    /// Keeps every [`Delivery`] for inspection (tests; memory-heavy).
    pub fn log_deliveries(&mut self) {
        self.deliveries_log = Some(Vec::new());
    }

    /// The logged deliveries (empty unless [`Self::log_deliveries`] was
    /// called).
    pub fn deliveries(&self) -> &[Delivery] {
        self.deliveries_log.as_deref().unwrap_or(&[])
    }

    /// Queues a packet for injection at an absolute time (must be called
    /// before the simulation reaches that time; injections must be queued
    /// in non-decreasing time order).
    pub fn queue_injection(&mut self, at_ns: u64, node: NodeCoord, packet: Packet) {
        debug_assert!(
            self.injections.back().is_none_or(|(t, _, _)| *t <= at_ns),
            "injections must be queued in time order"
        );
        self.injections.push_back((at_ns, node, packet));
    }

    /// Number of packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// End-to-end latency histogram (ns).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// The p2p address of a node (convenience re-export).
    pub fn p2p_addr(c: NodeCoord) -> u16 {
        p2p_addr(c)
    }

    fn drain_deliveries(&mut self) {
        for d in self.fabric.take_deliveries() {
            self.delivered += 1;
            self.latency.record(d.delivered_at_ns - d.injected_at_ns);
            if let Some(log) = self.deliveries_log.as_mut() {
                log.push(d);
            }
        }
    }
}

impl Model for FabricSim {
    type Event = FabricEvent;

    fn handle(&mut self, ctx: &mut Context<FabricEvent>, ev: FabricEvent) {
        let now = ctx.now().ticks();
        match ev {
            FabricEvent::Noc(ev) => self.fabric.handle(now, ev, ctx),
            FabricEvent::Pump => {
                while let Some(&(t, node, packet)) = self.injections.front() {
                    if t > now {
                        ctx.schedule_at(spinn_sim::SimTime::new(t), FabricEvent::Pump);
                        break;
                    }
                    self.injections.pop_front();
                    self.fabric.inject(now, node, packet, ctx);
                }
            }
        }
        self.drain_deliveries();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{McTableEntry, RouteSet};
    use spinn_sim::{Engine, SimTime};

    fn run_sim(sim: FabricSim, horizon_ns: u64) -> FabricSim {
        let mut engine = Engine::new(sim);
        engine.schedule_at(SimTime::ZERO, FabricEvent::Pump);
        engine.run_until(SimTime::new(horizon_ns));
        engine.into_model()
    }

    /// Loads a straight-line east route for `key` from (0,0) to (n,0):
    /// entry at source (out E) and at destination (to core 1) only;
    /// intermediate nodes rely on default routing.
    fn straight_east_tables(sim: &mut FabricSim, key: u32, n: u32) {
        sim.fabric
            .router_mut(NodeCoord::new(0, 0))
            .table
            .insert(McTableEntry {
                key,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_link(Direction::East),
            })
            .unwrap();
        sim.fabric
            .router_mut(NodeCoord::new(n, 0))
            .table
            .insert(McTableEntry {
                key,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
    }

    #[test]
    fn p2p_delivery_and_latency_scale_with_hops() {
        let mut sim = FabricSim::new(FabricConfig::new(8, 8));
        sim.log_deliveries();
        let src = NodeCoord::new(0, 0);
        for (i, dst) in [(1u32, 0u32), (4, 0), (4, 4)].iter().enumerate() {
            let dst = NodeCoord::new(dst.0, dst.1);
            sim.queue_injection(
                i as u64 * 10_000,
                src,
                Packet::p2p(p2p_addr(src), p2p_addr(dst), 0),
            );
        }
        let sim = run_sim(sim, 1_000_000);
        assert_eq!(sim.delivered(), 3);
        let d: Vec<_> = sim.deliveries().to_vec();
        assert_eq!(d[0].hops, 1);
        assert_eq!(d[1].hops, 4);
        assert_eq!(d[2].hops, 4); // diagonal: 4 NE hops
        let l1 = d[0].delivered_at_ns - d[0].injected_at_ns;
        let l4 = d[1].delivered_at_ns - d[1].injected_at_ns;
        assert!(l4 > 3 * l1, "latency should grow with hops: {l1} vs {l4}");
    }

    #[test]
    fn mc_default_routing_runs_straight() {
        let mut sim = FabricSim::new(FabricConfig::new(8, 8));
        sim.log_deliveries();
        straight_east_tables(&mut sim, 0xBEEF, 5);
        sim.queue_injection(0, NodeCoord::new(0, 0), Packet::multicast(0xBEEF));
        let sim = run_sim(sim, 1_000_000);
        assert_eq!(sim.delivered(), 1);
        let d = sim.deliveries()[0];
        assert_eq!(d.node, NodeCoord::new(5, 0));
        assert_eq!(d.cores, 0b10); // core 1
        assert_eq!(d.hops, 5);
        let stats = sim.fabric.total_stats();
        assert_eq!(stats.mc_default_routed, 4); // nodes 1..=4
        assert_eq!(stats.mc_table_hits, 2); // source + destination
    }

    #[test]
    fn mc_branching_multicast_tree() {
        // One entry at (1,0) branches the packet E and N, with local
        // delivery at three nodes.
        let mut sim = FabricSim::new(FabricConfig::new(6, 6));
        sim.log_deliveries();
        let key = 7;
        sim.fabric
            .router_mut(NodeCoord::new(0, 0))
            .table
            .insert(McTableEntry {
                key,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_link(Direction::East),
            })
            .unwrap();
        sim.fabric
            .router_mut(NodeCoord::new(1, 0))
            .table
            .insert(McTableEntry {
                key,
                mask: u32::MAX,
                route: RouteSet::EMPTY
                    .with_link(Direction::East)
                    .with_link(Direction::North)
                    .with_core(2),
            })
            .unwrap();
        sim.fabric
            .router_mut(NodeCoord::new(2, 0))
            .table
            .insert(McTableEntry {
                key,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_core(0),
            })
            .unwrap();
        sim.fabric
            .router_mut(NodeCoord::new(1, 1))
            .table
            .insert(McTableEntry {
                key,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
        sim.queue_injection(0, NodeCoord::new(0, 0), Packet::multicast(key));
        let sim = run_sim(sim, 1_000_000);
        assert_eq!(sim.delivered(), 3);
        let nodes: Vec<NodeCoord> = sim.deliveries().iter().map(|d| d.node).collect();
        assert!(nodes.contains(&NodeCoord::new(1, 0)));
        assert!(nodes.contains(&NodeCoord::new(2, 0)));
        assert!(nodes.contains(&NodeCoord::new(1, 1)));
    }

    #[test]
    fn emergency_routing_rescues_failed_link() {
        let mut sim = FabricSim::new(FabricConfig::new(8, 8));
        sim.log_deliveries();
        straight_east_tables(&mut sim, 0xAA, 5);
        // Fail the link (2,0) -> E, in the middle of the default-routed
        // segment.
        sim.fabric.fail_link(NodeCoord::new(2, 0), Direction::East);
        sim.queue_injection(0, NodeCoord::new(0, 0), Packet::multicast(0xAA));
        let sim = run_sim(sim, 10_000_000);
        assert_eq!(sim.delivered(), 1, "packet must arrive via the detour");
        let d = sim.deliveries()[0];
        assert_eq!(d.node, NodeCoord::new(5, 0));
        assert_eq!(d.hops, 6, "detour adds exactly one hop");
        let stats = sim.fabric.total_stats();
        assert_eq!(stats.emergency_reroutes, 1);
        assert_eq!(stats.emergency_second_legs, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn without_emergency_routing_packet_is_dropped() {
        let mut cfg = FabricConfig::new(8, 8);
        cfg.router.emergency_enabled = false;
        let mut sim = FabricSim::new(cfg);
        straight_east_tables(&mut sim, 0xAB, 5);
        sim.fabric.fail_link(NodeCoord::new(2, 0), Direction::East);
        sim.queue_injection(0, NodeCoord::new(0, 0), Packet::multicast(0xAB));
        let mut engine = Engine::new(sim);
        engine.schedule_at(SimTime::ZERO, FabricEvent::Pump);
        engine.run_until(SimTime::new(10_000_000));
        let sim = engine.into_model();
        assert_eq!(sim.delivered(), 0);
        let stats = sim.fabric.total_stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.emergency_reroutes, 0);
    }

    #[test]
    fn emergency_detour_of_east_goes_via_northeast_then_south() {
        // Structural check of the Fig. 8 geometry on the real fabric:
        // count traffic through the detour nodes.
        let mut sim = FabricSim::new(FabricConfig::new(8, 8));
        straight_east_tables(&mut sim, 1, 4);
        sim.fabric.fail_link(NodeCoord::new(1, 0), Direction::East);
        sim.queue_injection(0, NodeCoord::new(0, 0), Packet::multicast(1));
        let sim = run_sim(sim, 10_000_000);
        // The detour node is (2,1): it must have seen one emergency
        // second-leg forward.
        assert_eq!(
            sim.fabric
                .router(NodeCoord::new(2, 1))
                .stats
                .emergency_second_legs,
            1
        );
        assert_eq!(sim.delivered(), 1);
    }

    #[test]
    fn congestion_drops_without_emergency_and_improves_with() {
        // Hammer one link with a burst far beyond its queue capacity.
        let run_burst = |emergency: bool| {
            let mut cfg = FabricConfig::new(8, 8);
            cfg.router.emergency_enabled = emergency;
            cfg.out_queue_cap = 2;
            let mut sim = FabricSim::new(cfg);
            straight_east_tables(&mut sim, 5, 6);
            for i in 0..20 {
                // All injected back-to-back at t=i (much faster than the
                // 160 ns serialization).
                sim.queue_injection(i, NodeCoord::new(0, 0), Packet::multicast(5));
            }
            let sim = run_sim(sim, 100_000_000);
            let stats = sim.fabric.total_stats();
            (sim.delivered(), stats.dropped, stats.emergency_reroutes)
        };
        let (base_delivered, base_dropped, base_reroutes) = run_burst(false);
        assert!(
            base_dropped > 0,
            "expected drops under congestion without emergency routing"
        );
        assert_eq!(base_delivered + base_dropped, 20);
        assert_eq!(base_reroutes, 0);
        let (em_delivered, em_dropped, em_reroutes) = run_burst(true);
        assert!(
            em_delivered > base_delivered,
            "emergency routing should improve delivery: {em_delivered} vs {base_delivered}"
        );
        assert!(em_dropped < base_dropped);
        assert!(em_reroutes > 0);
    }

    #[test]
    fn moderate_burst_fully_rescued_by_emergency_routing() {
        // A burst sized within the wait1+wait2 tolerance: everything
        // arrives once the detour carries the overflow.
        let mut cfg = FabricConfig::new(8, 8);
        cfg.out_queue_cap = 2;
        let mut sim = FabricSim::new(cfg);
        straight_east_tables(&mut sim, 5, 6);
        for i in 0..8 {
            sim.queue_injection(i, NodeCoord::new(0, 0), Packet::multicast(5));
        }
        let sim = run_sim(sim, 100_000_000);
        assert_eq!(sim.delivered(), 8, "burst within tolerance must all arrive");
        assert_eq!(sim.fabric.total_stats().dropped, 0);
    }

    #[test]
    fn nn_packet_reaches_neighbour_only() {
        let mut sim = FabricSim::new(FabricConfig::new(4, 4));
        sim.log_deliveries();
        let mut engine = Engine::new(sim);
        let m = engine.model_mut();
        // inject_nn needs a scheduler; pump through the engine by
        // scheduling the arrival manually via the fabric API.
        struct Collect(Vec<(u64, NocEvent)>);
        impl NocScheduler for Collect {
            fn schedule(&mut self, d: u64, e: NocEvent) {
                self.0.push((d, e));
            }
        }
        let mut c = Collect(Vec::new());
        m.fabric.inject_nn(
            0,
            NodeCoord::new(1, 1),
            Direction::North,
            Packet::nn(9, 3),
            &mut c,
        );
        for (d, e) in c.0 {
            engine.schedule_at(SimTime::new(d), FabricEvent::Noc(e));
        }
        engine.run_to_completion(Some(10_000));
        let sim = engine.into_model();
        assert_eq!(sim.delivered(), 1);
        assert_eq!(sim.deliveries()[0].node, NodeCoord::new(1, 2));
        assert_eq!(sim.deliveries()[0].packet.key, 9);
    }

    #[test]
    fn routing_loop_ages_out() {
        // Two nodes pointing at each other: the packet ping-pongs until
        // the hop limit kills it.
        let mut cfg = FabricConfig::new(4, 4);
        cfg.max_hops = 16;
        let mut sim = FabricSim::new(cfg);
        for (node, dir) in [
            (NodeCoord::new(0, 0), Direction::East),
            (NodeCoord::new(1, 0), Direction::West),
        ] {
            sim.fabric
                .router_mut(node)
                .table
                .insert(McTableEntry {
                    key: 3,
                    mask: u32::MAX,
                    route: RouteSet::EMPTY.with_link(dir),
                })
                .unwrap();
        }
        sim.queue_injection(0, NodeCoord::new(0, 0), Packet::multicast(3));
        let sim = run_sim(sim, 100_000_000);
        assert_eq!(sim.delivered(), 0);
        assert_eq!(sim.fabric.total_stats().aged_out, 1);
    }

    #[test]
    fn p2p_addr_roundtrip() {
        for c in [
            NodeCoord::new(0, 0),
            NodeCoord::new(255, 255),
            NodeCoord::new(12, 7),
        ] {
            assert_eq!(p2p_coord(p2p_addr(c)), c);
        }
    }

    #[test]
    fn deterministic_two_runs_identical() {
        let build = || {
            let mut sim = FabricSim::new(FabricConfig::new(6, 6));
            straight_east_tables(&mut sim, 2, 4);
            for i in 0..10 {
                sim.queue_injection(i * 50, NodeCoord::new(0, 0), Packet::multicast(2));
            }
            let sim = run_sim(sim, 1_000_000);
            (sim.delivered(), sim.latency().mean() as u64)
        };
        assert_eq!(build(), build());
    }
}
