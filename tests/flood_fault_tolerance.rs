//! Flood-fill under link failure: the fault-tolerance half of §5.2's
//! load-time/fault-tolerance trade-off. The flood reaches every chip via
//! six redundant directions, so losing links must not lose blocks.

use spinnaker::machine::flood::{FloodConfig, FloodSim};
use spinnaker::noc::direction::Direction;
use spinnaker::noc::mesh::NodeCoord;

#[test]
fn flood_completes_despite_failed_links() {
    let cfg = FloodConfig::new(8, 8);
    let mut engine = FloodSim::engine(cfg);
    // Sever five of the six links into chip (4,4) plus a few others.
    {
        let fabric = &mut engine.model_mut().fabric;
        for d in [
            Direction::East,
            Direction::NorthEast,
            Direction::North,
            Direction::West,
            Direction::SouthWest,
        ] {
            fabric.fail_link(NodeCoord::new(4, 4), d);
        }
        fabric.fail_link(NodeCoord::new(2, 2), Direction::East);
        fabric.fail_link(NodeCoord::new(6, 1), Direction::North);
    }
    engine.run_to_completion(Some(500_000_000));
    let outcome = engine.model().outcome();
    assert!(
        outcome.load_complete_ns.is_some(),
        "flood-fill must complete around failed links"
    );
    // The isolated chip hears fewer copies, but still at least one.
    assert!(outcome.mean_copies > 4.0);
}

#[test]
fn flood_with_redundancy_survives_failures_too() {
    let mut cfg = FloodConfig::new(6, 6);
    cfg.redundancy_k = 2;
    let mut engine = FloodSim::engine(cfg);
    {
        let fabric = &mut engine.model_mut().fabric;
        fabric.fail_link(NodeCoord::new(1, 1), Direction::East);
        fabric.fail_link(NodeCoord::new(3, 3), Direction::SouthWest);
    }
    engine.run_to_completion(Some(500_000_000));
    let outcome = engine.model().outcome();
    assert!(outcome.load_complete_ns.is_some());
}

#[test]
fn healthy_flood_time_barely_moves_under_damage() {
    let healthy = FloodSim::run(FloodConfig::new(6, 6))
        .load_complete_ns
        .unwrap();
    let mut engine = FloodSim::engine(FloodConfig::new(6, 6));
    engine
        .model_mut()
        .fabric
        .fail_link(NodeCoord::new(2, 0), Direction::East);
    engine.run_to_completion(Some(500_000_000));
    let damaged = engine.model().outcome().load_complete_ns.unwrap();
    assert!(
        (damaged as f64) < healthy as f64 * 1.25,
        "one failed link should barely affect load time: {healthy} vs {damaged}"
    );
}
