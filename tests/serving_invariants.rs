//! Serving-layer conformance: the `spinn-serve` pool and admission
//! control must be invisible in the spike record and replayable in the
//! admission record.
//!
//! Pinned here:
//!
//! * **Eviction is bit-exact.** The same multi-model job stream served
//!   under an effectively-zero resident-byte budget (every batch
//!   checkpoints the other models out) and under an unlimited budget
//!   produces identical per-job spike streams — and both match a plain
//!   [`RunSession`] replaying each model's jobs back-to-back with no
//!   server in the loop.
//! * **Quota verdicts replay.** A seeded submission burst against
//!   quota-limited tenants produces the identical `Ok`/`Err` sequence
//!   (typed [`AdmitError`]s included) when replayed on a fresh server.
//! * **Interleaving independence (proptest).** Random interleavings of
//!   submit / poll / explicit-evict against a tight-budget batching
//!   server match an unlimited-budget, batch-of-one reference job for
//!   job, because per-model dispatch order is FIFO whatever the pool
//!   does between batches.

use proptest::collection::vec;
use proptest::prelude::*;

use spinn_serve::{AdmitError, JobSpec, ServeConfig, Server, Stimulus, TenantQuota};
use spinnaker::prelude::*;
use spinnaker::sim::Xoshiro256;

/// A small two-population chain; `size`/`salt` vary it per model so
/// different models have distinct (but deterministic) spike streams.
fn model_net(size: u32, salt: u64) -> NetworkGraph {
    let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
    let mut net = NetworkGraph::new();
    let a = net.population("in", size, kind, 0.0);
    let b = net.population("out", size, kind, 0.0);
    net.project(
        a,
        b,
        Connector::FixedProbability(0.08),
        Synapses::constant(520, 1),
        salt,
    );
    net
}

fn sim_cfg() -> SimConfig {
    SimConfig::new(2, 2).with_neurons_per_core(128)
}

/// A server preloaded with `models` copies of the chain at staggered
/// sizes and one unlimited tenant.
fn server_with_fleet(
    cfg: ServeConfig,
    models: u32,
) -> (Server, spinn_serve::TenantId, Vec<spinn_serve::ModelId>) {
    let mut server = Server::new(cfg);
    let tenant = server.register_tenant("t0", TenantQuota::unlimited());
    let ids = (0..models)
        .map(|m| server.register_model(model_net(96 + 16 * m, 0x5E47 ^ u64::from(m)), sim_cfg()))
        .collect();
    (server, tenant, ids)
}

/// The deterministic job stream both arms (and the plain-session
/// control) replay: `(model index, run_ms, stimulus rate, stimulus
/// seed)` as a pure function of the submission index.
fn job_stream(n: usize, models: u32) -> Vec<(u32, u32, f64, u64)> {
    (0..n)
        .map(|i| {
            let i = i as u64;
            (
                (i % u64::from(models)) as u32,
                2 + (i % 3) as u32,
                20.0 + 5.0 * (i % 4) as f64,
                0xBEEF ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
        })
        .collect()
}

fn spec_for(
    tenant: spinn_serve::TenantId,
    ids: &[spinn_serve::ModelId],
    job: (u32, u32, f64, u64),
) -> JobSpec {
    let (model, run_ms, rate_hz, seed) = job;
    JobSpec {
        tenant,
        model: ids[model as usize],
        run_ms,
        stimulus: vec![Stimulus {
            pop: PopulationId::from_index(0),
            rate_hz,
            seed,
        }],
    }
}

/// Runs the shared stream through a server and returns spikes keyed by
/// admission sequence.
fn serve_stream(
    budget: u64,
    max_batch: usize,
    stream: &[(u32, u32, f64, u64)],
) -> Vec<Vec<PopSpike>> {
    let cfg = ServeConfig {
        queue_cap: stream.len().max(1),
        resident_budget_bytes: budget,
        max_batch,
        threads: 1,
    };
    let models = 1 + stream.iter().map(|j| j.0).max().unwrap_or(0);
    let (mut server, tenant, ids) = server_with_fleet(cfg, models);
    let mut out: Vec<Option<Vec<PopSpike>>> = vec![None; stream.len()];
    for &job in stream {
        server
            .submit(spec_for(tenant, &ids, job))
            .expect("unlimited tenant admits");
    }
    for r in server.drain().expect("drain") {
        out[r.job.sequence() as usize] = Some(r.spikes);
    }
    out.into_iter()
        .map(|s| s.expect("every job served"))
        .collect()
}

#[test]
fn eviction_and_rehydrate_are_bit_exact() {
    let stream = job_stream(18, 3);
    let roomy = serve_stream(u64::MAX, 4, &stream);
    // Budget 1 byte: every acquire is over budget, so each batch
    // checkpoints every other resident model out — maximal churn.
    let tight = serve_stream(1, 4, &stream);
    assert_eq!(roomy, tight, "evicted arm diverged from the resident arm");

    // Control: a plain RunSession per model, replaying that model's
    // jobs back-to-back with no server, pool or snapshot in the loop.
    for model in 0..3u32 {
        let net = model_net(96 + 16 * model, 0x5E47 ^ u64::from(model));
        let mut session = Simulation::build(&net, sim_cfg())
            .expect("build")
            .into_session();
        for (i, &(m, run_ms, rate_hz, seed)) in stream.iter().enumerate() {
            if m != model {
                continue;
            }
            session.clear_stimulus_sources();
            session.add_poisson(PopulationId::from_index(0), rate_hz, seed);
            session.run_for(run_ms);
            assert_eq!(
                session.take_spikes(),
                roomy[i],
                "server-served job {i} diverged from the plain session"
            );
        }
    }
}

#[test]
fn tight_budget_really_evicts() {
    // The bit-exactness above is vacuous if the tight arm never took
    // the eviction path; pin that it does.
    let stream = job_stream(18, 3);
    let cfg = ServeConfig {
        queue_cap: stream.len(),
        resident_budget_bytes: 1,
        max_batch: 4,
        threads: 1,
    };
    let (mut server, tenant, ids) = server_with_fleet(cfg, 3);
    for &job in &stream {
        server.submit(spec_for(tenant, &ids, job)).expect("admit");
    }
    server.drain().expect("drain");
    let pool = server.pool_stats();
    assert!(pool.evictions > 0, "1-byte budget must evict: {pool:?}");
    assert!(
        pool.rehydrates > 0,
        "evicted models must rehydrate: {pool:?}"
    );
}

#[test]
fn quota_rejections_replay_identically() {
    // A seeded two-tenant burst against a tiny queue: every rejection
    // class (queue-full, in-flight, tick-budget) is on the table, and
    // the whole Ok/Err trace must replay exactly.
    let run = || {
        let cfg = ServeConfig {
            queue_cap: 3,
            resident_budget_bytes: u64::MAX,
            max_batch: 2,
            threads: 1,
        };
        let mut server = Server::new(cfg);
        let bounded = server.register_tenant("bounded", TenantQuota::new(2, 40));
        let greedy = server.register_tenant("greedy", TenantQuota::new(8, u64::MAX));
        let model = server.register_model(model_net(96, 0x5E47), sim_cfg());
        let mut rng = Xoshiro256::seed_from_u64(0x0_5EED);
        let mut trace: Vec<Result<u64, AdmitError>> = Vec::new();
        for i in 0..24u64 {
            let tenant = if rng.gen_bool(0.5) { bounded } else { greedy };
            let spec = JobSpec {
                tenant,
                model,
                run_ms: 2 + (i % 3) as u32,
                stimulus: vec![Stimulus {
                    pop: PopulationId::from_index(0),
                    rate_hz: 15.0,
                    seed: i,
                }],
            };
            trace.push(server.submit(spec).map(|id| id.sequence()));
            if i % 5 == 4 {
                server.poll().expect("poll");
            }
        }
        server.drain().expect("drain");
        (trace, server.stats().rejected)
    };
    let (first, rejected) = run();
    let (second, _) = run();
    assert_eq!(first, second, "admission trace must replay bit-for-bit");
    assert!(rejected > 0, "the burst must trip at least one quota");
    assert!(
        first.iter().any(Result::is_ok),
        "the burst must also admit work"
    );
}

/// One scripted server operation for the interleaving property.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Submit a job against `model % fleet` with a small `run_ms`.
    Submit { model: u32, run_ms: u32, seed: u64 },
    /// Dispatch one batch.
    Poll,
    /// Checkpoint `model % fleet` out of residency.
    Evict(u32),
}

fn decode(selector: u8, model: u8, extra: u16) -> Op {
    match selector {
        0..=2 => Op::Submit {
            model: u32::from(model),
            run_ms: 1 + u32::from(extra % 3),
            seed: u64::from(extra),
        },
        3..=4 => Op::Poll,
        _ => Op::Evict(u32::from(model)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random submit/poll/evict interleavings against a tight-budget
    /// batching server match an unlimited-budget, batch-of-one
    /// reference, job for job.
    #[test]
    fn interleavings_match_reference(
        raw in vec((0u8..6, 0u8..2, any::<u16>()), 0..24),
    ) {
        const MODELS: u32 = 2;
        let ops: Vec<Op> = raw.into_iter().map(|(s, m, e)| decode(s, m, e)).collect();

        let tight_cfg = ServeConfig {
            queue_cap: ops.len().max(1),
            resident_budget_bytes: 1,
            max_batch: 3,
            threads: 1,
        };
        let ref_cfg = ServeConfig {
            queue_cap: ops.len().max(1),
            resident_budget_bytes: u64::MAX,
            max_batch: 1,
            threads: 1,
        };
        let (mut tight, t0, tight_ids) = server_with_fleet(tight_cfg, MODELS);
        let (mut reference, r0, ref_ids) = server_with_fleet(ref_cfg, MODELS);

        // The reference only sees the submissions (in the same order);
        // polls and evicts are the interleaving under test.
        let mut served = Vec::new();
        for op in &ops {
            match *op {
                Op::Submit { model, run_ms, seed } => {
                    let mk = |tenant, ids: &[spinn_serve::ModelId]| JobSpec {
                        tenant,
                        model: ids[(model % MODELS) as usize],
                        run_ms,
                        stimulus: vec![Stimulus {
                            pop: PopulationId::from_index(0),
                            rate_hz: 25.0,
                            seed,
                        }],
                    };
                    let a = tight.submit(mk(t0, &tight_ids)).expect("tight admits");
                    let b = reference.submit(mk(r0, &ref_ids)).expect("reference admits");
                    prop_assert_eq!(a.sequence(), b.sequence());
                }
                Op::Poll => {
                    served.extend(tight.poll().expect("poll"));
                }
                Op::Evict(m) => {
                    tight.evict(tight_ids[(m % MODELS) as usize]);
                }
            }
        }
        served.extend(tight.drain().expect("drain tight"));
        let mut expected: Vec<_> = reference.drain().expect("drain reference");
        // Mid-script polls mean the tight arm's results arrived across
        // several drains' worth of batches — compare by admission id.
        served.sort_by_key(|r| r.job);
        expected.sort_by_key(|r| r.job);
        prop_assert_eq!(served.len(), expected.len());
        for (a, b) in served.iter().zip(&expected) {
            prop_assert_eq!(a.job, b.job);
            prop_assert_eq!(&a.spikes, &b.spikes, "job {} diverged", a.job);
        }
    }
}
