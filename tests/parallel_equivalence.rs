//! The `spinn-par` contract: a sharded run is an event-exact replay of
//! the serial engine — identical `SpikeRecord` streams for every thread
//! count, on every placement.

use proptest::prelude::*;

use spinnaker::machine::config::MachineConfig;
use spinnaker::machine::machine::{NeuralMachine, SpikeRecord};
use spinnaker::neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
use spinnaker::neuron::model::AnyNeuron;
use spinnaker::neuron::synapse::{SynapticRow, SynapticWord};
use spinnaker::noc::direction::Direction;
use spinnaker::noc::mesh::NodeCoord;
use spinnaker::noc::table::{McTableEntry, RouteSet};
use spinnaker::prelude::*;

fn rs_neurons(n: usize) -> Vec<AnyNeuron> {
    (0..n)
        .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
        .collect()
}

/// A hand-routed 4x4 machine: a driven population on (0,0) feeding a
/// relay on (1,0) feeding a far target on (3,2), so spikes cross several
/// chips (and shard boundaries at every thread count).
fn chain_machine() -> NeuralMachine {
    let mut m = NeuralMachine::new(MachineConfig::new(4, 4).with_force_shards(true));
    let a = NodeCoord::new(0, 0);
    let b = NodeCoord::new(1, 0);
    let c = NodeCoord::new(3, 2);
    m.load_core(a, 1, rs_neurons(40), vec![11.0; 40], 0x1000)
        .unwrap();
    m.load_core(b, 1, rs_neurons(40), vec![0.0; 40], 0x2000)
        .unwrap();
    m.load_core(c, 1, rs_neurons(40), vec![0.0; 40], 0x3000)
        .unwrap();
    // a -> b: one hop east.
    m.router_mut(a)
        .table
        .insert(McTableEntry {
            key: 0x1000,
            mask: 0xFFFF_F000,
            route: RouteSet::EMPTY.with_link(Direction::East),
        })
        .unwrap();
    m.router_mut(b)
        .table
        .insert(McTableEntry {
            key: 0x1000,
            mask: 0xFFFF_F000,
            route: RouteSet::EMPTY.with_core(1),
        })
        .unwrap();
    // b -> c: northeast twice then default east; route at the branch
    // points only.
    m.router_mut(b)
        .table
        .insert(McTableEntry {
            key: 0x2000,
            mask: 0xFFFF_F000,
            route: RouteSet::EMPTY.with_link(Direction::NorthEast),
        })
        .unwrap();
    m.router_mut(c)
        .table
        .insert(McTableEntry {
            key: 0x2000,
            mask: 0xFFFF_F000,
            route: RouteSet::EMPTY.with_core(1),
        })
        .unwrap();
    for i in 0..40u32 {
        let row_b: SynapticRow = (0..40)
            .map(|t| SynapticWord::new(700, 1 + (i % 3) as u8, t as u16))
            .collect();
        m.set_row(b, 1, 0x1000 + i, row_b);
        let row_c: SynapticRow = (0..40)
            .map(|t| SynapticWord::new(650, 2, t as u16))
            .collect();
        m.set_row(c, 1, 0x2000 + i, row_c);
    }
    m
}

#[test]
fn chain_machine_parallel_matches_serial() {
    let reference: Vec<SpikeRecord> = chain_machine().run(200).spikes().to_vec();
    assert!(reference.len() > 100, "workload must actually spike");
    for threads in [1usize, 2, 3, 4, 16] {
        let par = chain_machine().run_parallel(200, threads);
        assert_eq!(
            par.spikes(),
            reference.as_slice(),
            "thread count {threads} changed the spike stream"
        );
        assert_eq!(par.row_misses(), 0);
        if threads > 1 {
            let stats = par.par_stats().expect("parallel run records stats");
            assert!(
                stats.exchanged > 0,
                "spikes must actually cross shard boundaries ({threads} threads)"
            );
        }
    }
}

#[test]
fn parallel_merges_stats_consistently() {
    let serial = chain_machine().run(150);
    let par = chain_machine().run_parallel(150, 4);
    assert_eq!(par.spikes().len(), serial.spikes().len());
    assert_eq!(
        par.meter().instructions,
        serial.meter().instructions,
        "instruction accounting must merge exactly"
    );
    assert_eq!(par.spike_latency().count(), serial.spike_latency().count());
    assert_eq!(par.spike_latency().max(), serial.spike_latency().max());
    assert_eq!(
        par.router_stats().mc_table_hits,
        serial.router_stats().mc_table_hits
    );
    assert_eq!(par.realtime_violations(), serial.realtime_violations());
}

/// The full pipeline (place -> route -> load -> run) through the public
/// API: `with_threads(n)` must not change the raster.
fn api_net(seed: u64) -> NetworkGraph {
    let mut net = NetworkGraph::new();
    let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
    let a = net.population("a", 150, kind, 10.0);
    let b = net.population("b", 150, kind, 0.0);
    let c = net.population("c", 100, kind, 0.0);
    net.project(
        a,
        b,
        Connector::FixedFanOut(15),
        Synapses::constant(500, 2),
        seed,
    );
    net.project(
        b,
        c,
        Connector::FixedProbability(0.12),
        Synapses::constant(550, 3),
        seed ^ 1,
    );
    net.project(
        c,
        a,
        Connector::FixedFanOut(8),
        Synapses::constant(200, 4),
        seed ^ 2,
    );
    net
}

#[test]
fn api_run_identical_for_1_2_4_threads() {
    let net = api_net(42);
    let spikes_at = |threads: u32| {
        let cfg = SimConfig::new(4, 4)
            .with_force_shards(true)
            .with_threads(threads);
        Simulation::build(&net, cfg).unwrap().run(200).spikes()
    };
    let reference = spikes_at(1);
    assert!(reference.len() > 200, "workload must actually spike");
    for threads in [2u32, 4] {
        assert_eq!(spikes_at(threads), reference, "threads = {threads}");
    }
}

/// A dense synfire ring scattered over the whole torus by random
/// placement: heavy cross-shard traffic with frequent same-nanosecond
/// packet collisions — the regime where insertion-order tie-breaking
/// would diverge (content-ranked ordering keeps it exact).
#[test]
fn dense_random_placement_stays_identical() {
    let mut net = NetworkGraph::new();
    let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
    let pops: Vec<_> = (0..8u32)
        .map(|i| net.population(&format!("s{i}"), 256, kind, if i == 0 { 9.0 } else { 0.0 }))
        .collect();
    for (i, &src) in pops.iter().enumerate() {
        let dst = pops[(i + 1) % pops.len()];
        net.project(
            src,
            dst,
            Connector::FixedFanOut(12),
            Synapses::constant(600, 2),
            i as u64,
        );
    }
    let cfg = SimConfig::new(4, 4)
        .with_force_shards(true)
        .with_neurons_per_core(128)
        .with_placer(Placer::Random { seed: 0xD15E });
    let serial = Simulation::build(&net, cfg.clone()).unwrap().run(120);
    let par = Simulation::build(&net, cfg.with_threads(4))
        .unwrap()
        .run(120);
    assert!(serial.spikes().len() > 500, "dense workload must spike");
    let stats = par.machine.par_stats().expect("parallel stats");
    assert!(stats.exchanged > 100, "workload must cross shards heavily");
    assert_eq!(par.spikes(), serial.spikes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Placement and thread count are both free choices: neither may
    /// perturb the spike raster (§3.2 virtualized topology, extended to
    /// the host's parallelism).
    #[test]
    fn random_placement_and_threads_preserve_raster(
        placer_sel in 0u8..3,
        place_seed in any::<u64>(),
        net_seed in any::<u64>(),
        threads in 2u32..6,
    ) {
        let placer = match placer_sel {
            0 => Placer::Locality,
            1 => Placer::RoundRobin,
            _ => Placer::Random { seed: place_seed },
        };
        let net = api_net(net_seed);
        let cfg = SimConfig::new(4, 4).with_force_shards(true).with_placer(placer);
        let serial = Simulation::build(&net, cfg.clone()).unwrap().run(100).spikes();
        let par = Simulation::build(&net, cfg.with_threads(threads))
            .unwrap()
            .run(100)
            .spikes();
        prop_assert_eq!(par, serial);
    }
}
