//! Conformance for the chunked wide tick path and the clamped sharded
//! scheduler: every (queue kind, thread count) combination — and a
//! checkpoint/restore cut mid-run — must replay the serial engine's
//! spike stream bit-exactly.
//!
//! The wide tick path selects itself at runtime (`SPINN_SCALAR_TICK=1`
//! forces the scalar fallback); CI runs this suite, and the pinned
//! golden traces, under both settings, so the two tick paths are
//! checked against each other *across* processes — each run must land
//! on the same spikes whichever path computed the membrane update.

use proptest::prelude::*;

use spinnaker::neuron::izhikevich::IzhikevichParams;
use spinnaker::neuron::lif::LifParams;
use spinnaker::prelude::*;
use spinnaker::RunSession;

/// A mixed-model net: Izhikevich populations (three parameter presets,
/// so chattering/fast-spiking chunks sit next to regular ones) driving
/// a LIF readout — both wide-path implementations and the bitmask
/// spike sweep are on the hot path, including partial tail chunks
/// (population sizes straddle the 8-lane chunk width).
fn mixed_net(seed: u64) -> NetworkGraph {
    let mut net = NetworkGraph::new();
    let presets = [
        IzhikevichParams::regular_spiking(),
        IzhikevichParams::fast_spiking(),
        IzhikevichParams::chattering(),
    ];
    let pops: Vec<_> = (0..3u32)
        .map(|i| {
            net.population(
                &format!("iz{i}"),
                121 + 10 * i, // deliberately not multiples of the lane width
                NeuronKind::Izhikevich(presets[i as usize]),
                if i == 0 { 10.0 } else { 0.0 },
            )
        })
        .collect();
    let readout = net.population("lif", 93, NeuronKind::Lif(LifParams::default()), 0.0);
    for (i, &src) in pops.iter().enumerate() {
        let dst = pops[(i + 1) % pops.len()];
        net.project(
            src,
            dst,
            Connector::FixedFanOut(10),
            Synapses::constant(620, 1 + (i as u8 % 3)),
            seed ^ i as u64,
        );
        net.project(
            src,
            readout,
            Connector::FixedProbability(0.08),
            Synapses::constant(400, 2),
            seed ^ (0x10 + i as u64),
        );
    }
    net
}

fn cfg(queue: QueueKind, threads: u32) -> SimConfig {
    SimConfig::new(4, 4)
        .with_force_shards(true)
        .with_neurons_per_core(64)
        .with_queue(queue)
        .with_threads(threads)
}

#[test]
fn every_queue_and_thread_count_replays_the_serial_run() {
    let net = mixed_net(0xB0);
    let reference = Simulation::build(&net, cfg(QueueKind::Calendar, 1))
        .unwrap()
        .run(80)
        .spikes();
    assert!(reference.len() > 200, "workload must actually spike");
    for queue in [QueueKind::Heap, QueueKind::Calendar] {
        for threads in [1u32, 4, 16] {
            let spikes = Simulation::build(&net, cfg(queue, threads))
                .unwrap()
                .run(80)
                .spikes();
            assert_eq!(
                spikes, reference,
                "({queue:?}, {threads} threads) diverged from the serial calendar run"
            );
        }
    }
}

#[test]
fn checkpoint_mid_run_then_resume_replays_the_straight_run() {
    let net = mixed_net(7);
    let whole = {
        let mut s = Simulation::build(&net, cfg(QueueKind::Calendar, 1))
            .unwrap()
            .into_session();
        s.run_for(90);
        s.machine().spikes().to_vec()
    };
    assert!(!whole.is_empty(), "workload must actually spike");
    // Cut at an odd boundary, serialize, restore onto a *different*
    // queue kind and thread count, finish sharded: same raster.
    let mut s = Simulation::build(&net, cfg(QueueKind::Heap, 4))
        .unwrap()
        .into_session();
    s.run_for(37);
    let snap = s.checkpoint();
    let mut s = RunSession::restore(&net, cfg(QueueKind::Calendar, 16), &snap).unwrap();
    s.run_for(53);
    assert_eq!(whole, s.machine().spikes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Net topology, queue kind and shard count are all free choices:
    /// none may perturb the raster the wide tick path produces.
    #[test]
    fn random_nets_replay_across_queue_and_shards(
        seed in any::<u64>(),
        queue_sel in 0u8..2,
        threads in 2u32..6,
    ) {
        let queue = if queue_sel == 0 { QueueKind::Heap } else { QueueKind::Calendar };
        let net = mixed_net(seed);
        let serial = Simulation::build(&net, cfg(QueueKind::Calendar, 1))
            .unwrap()
            .run(40)
            .spikes();
        let sharded = Simulation::build(&net, cfg(queue, threads))
            .unwrap()
            .run(40)
            .spikes();
        prop_assert_eq!(sharded, serial);
    }
}
