//! Real-time behaviour under scaling and overload: the §3.1 "bounded
//! asynchrony" contract.
//!
//! The machine's defining property is that every core keeps up with its
//! 1 ms timer. These tests check that the property holds under weak
//! scaling (bigger machine, same per-core load) and that the overrun
//! detector actually fires when a core is overloaded.

use spinnaker::prelude::*;

fn rs() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
}

/// A network sized to `chips` with constant per-core load: one
/// independent driver->target population pair per chip, so both the
/// neuron count per core AND the packet fan-in per core stay fixed as
/// the machine grows (true weak scaling; a machine-wide projection
/// would grow every core's packet load with machine size).
fn weak_scaled_net(chips: u32) -> NetworkGraph {
    let mut net = NetworkGraph::new();
    for c in 0..chips {
        // Slightly staggered drive desynchronizes the (otherwise
        // identical) populations across chips.
        let a = net.population(&format!("a{c}"), 8 * 128, rs(), 8.6 + 0.1 * (c % 8) as f32);
        let b = net.population(&format!("b{c}"), 8 * 128, rs(), 0.0);
        net.project(
            a,
            b,
            Connector::FixedFanOut(20),
            Synapses::constant(300, 2),
            c as u64,
        );
    }
    net
}

#[test]
fn weak_scaling_holds_real_time() {
    for (w, h) in [(2u32, 2u32), (4, 4), (6, 6)] {
        let net = weak_scaled_net(w * h);
        let cfg = SimConfig::new(w, h).with_neurons_per_core(128);
        let done = Simulation::build(&net, cfg).unwrap().run(100);
        assert_eq!(
            done.machine.realtime_violations(),
            0,
            "{w}x{h}: real time must hold under weak scaling"
        );
        let p99 = done.machine.spike_latency().percentile(99.0);
        assert!(
            p99 < 200_000,
            "{w}x{h}: p99 latency {p99} ns should stay well under 1 ms"
        );
    }
}

#[test]
fn overload_detector_fires() {
    // Make the per-neuron cost absurd: a 128-neuron core then needs
    // ~13 ms per tick and must blow its budget.
    let net = weak_scaled_net(4);
    let mut cfg = SimConfig::new(2, 2).with_neurons_per_core(128);
    cfg.machine.costs.per_neuron_instr = 20_000;
    let done = Simulation::build(&net, cfg).unwrap().run(50);
    assert!(
        done.machine.realtime_violations() > 0,
        "overloaded cores must report real-time violations"
    );
}

#[test]
fn per_core_load_determines_headroom_not_machine_size() {
    // Instruction counts scale with neurons simulated, so busy fraction
    // per core stays ~constant under weak scaling.
    let busy_fraction = |chips_w: u32| {
        let net = weak_scaled_net(chips_w * chips_w);
        let cfg = SimConfig::new(chips_w, chips_w).with_neurons_per_core(128);
        let done = Simulation::build(&net, cfg).unwrap().run(100);
        let m = done.machine.meter();
        m.core_active_ns as f64 / (m.core_active_ns + m.core_sleep_ns) as f64
    };
    let f2 = busy_fraction(2);
    let f5 = busy_fraction(5);
    assert!(
        (f2 - f5).abs() < 0.05,
        "busy fraction should be scale-free: {f2:.3} vs {f5:.3}"
    );
}

#[test]
fn aggregate_mips_grows_with_machine_size() {
    // The headline scaling claim (E9 in miniature): instructions executed
    // grow with the machine while real time holds.
    let mips = |chips_w: u32| {
        let net = weak_scaled_net(chips_w * chips_w);
        let cfg = SimConfig::new(chips_w, chips_w).with_neurons_per_core(128);
        let done = Simulation::build(&net, cfg).unwrap().run(100);
        assert_eq!(done.machine.realtime_violations(), 0);
        done.machine.meter().mips(done.machine.duration_ns())
    };
    let m2 = mips(2);
    let m4 = mips(4);
    assert!(
        m4 > 3.0 * m2,
        "4x the chips should deliver ~4x the sustained MIPS: {m2:.0} vs {m4:.0}"
    );
}
