//! Telemetry must observe, never steer: the synfire golden trace
//! (`tests/golden/synfire.trace`) replays **bit-exactly** under every
//! observability mode — `Disabled`, `Counters`, `CountersAndTrace` —
//! across both event-queue kinds and serial/sharded execution. The
//! counters themselves are checked against ground truth (the recorded
//! raster), and session segment summaries must partition the run's
//! totals.

use std::path::PathBuf;

use spinnaker::machine::machine::SpikeRecord;
use spinnaker::obs::Counter;
use spinnaker::prelude::*;

const RUN_MS: u32 = 200;

/// The golden-suite synfire chain (must match `tests/golden_traces.rs`
/// exactly — same net, placement seed and machine geometry).
fn synfire_net() -> NetworkGraph {
    let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
    let mut net = NetworkGraph::new();
    let pops: Vec<_> = (0..8u32)
        .map(|i| net.population(&format!("s{i}"), 128, kind, if i == 0 { 9.0 } else { 0.0 }))
        .collect();
    for (i, &src) in pops.iter().enumerate() {
        let dst = pops[(i + 1) % pops.len()];
        net.project(
            src,
            dst,
            Connector::FixedFanOut(12),
            Synapses::constant(600, 2),
            i as u64,
        );
    }
    net
}

fn synfire_cfg(obs: ObsMode, queue: QueueKind, threads: u32) -> SimConfig {
    SimConfig::new(4, 4)
        .with_force_shards(true)
        .with_neurons_per_core(64)
        .with_placer(Placer::Random { seed: 0x60_1D })
        .with_queue(queue)
        .with_threads(threads)
        .with_observability(obs)
}

fn run_synfire(obs: ObsMode, queue: QueueKind, threads: u32) -> Completed {
    let net = synfire_net();
    Simulation::build(&net, synfire_cfg(obs, queue, threads))
        .expect("synfire fits a 4x4 machine")
        .run(RUN_MS)
}

/// The recorded golden trace (the same file `tests/golden_traces.rs`
/// pins the un-instrumented engine to).
fn golden_synfire() -> Vec<SpikeRecord> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/synfire.trace");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden trace {}: {e}", path.display()))
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let time_ms: u32 = it.next().expect("time").parse().expect("time_ms");
            let key = it.next().expect("key").trim_start_matches("0x");
            SpikeRecord {
                time_ms,
                key: u32::from_str_radix(key, 16).expect("key"),
            }
        })
        .collect()
}

/// The headline property: every observability mode replays the golden
/// trace bit-exactly, whatever the queue kind or thread count.
#[test]
fn every_observability_mode_replays_the_golden_trace() {
    let golden = golden_synfire();
    assert!(
        golden.len() >= 400,
        "golden trace too quiet to pin anything"
    );
    for obs in [
        ObsMode::Disabled,
        ObsMode::Counters,
        ObsMode::CountersAndTrace,
    ] {
        for queue in [QueueKind::Heap, QueueKind::Calendar] {
            for threads in [1u32, 4, 16] {
                let done = run_synfire(obs, queue, threads);
                assert_eq!(
                    done.machine.spikes(),
                    &golden[..],
                    "{obs} observability, {queue} queue, {threads} thread(s) \
                     diverges from the golden trace"
                );
            }
        }
    }
}

/// The counters must agree with ground truth: the spike counter equals
/// the recorded raster, neuron ticks cover population x biological
/// time, and the queue-occupancy gauge saw real work.
#[test]
fn counters_match_the_recorded_raster() {
    for threads in [1u32, 4] {
        let done = run_synfire(ObsMode::Counters, QueueKind::Calendar, threads);
        let t = done.machine.telemetry();
        assert!(t.is_enabled());
        assert_eq!(
            t.total(Counter::Spikes),
            done.machine.spikes().len() as u64,
            "{threads} thread(s): spike counter vs raster"
        );
        assert_eq!(
            t.total(Counter::NeuronsTicked),
            8 * 128 * u64::from(RUN_MS),
            "{threads} thread(s): every neuron ticks every millisecond"
        );
        assert!(t.total(Counter::Events) > 0);
        assert!(t.total(Counter::QueuePeak) > 0);
        // Counters mode keeps the expensive collectors off.
        assert!(t.trace().next().is_none(), "no trace in Counters mode");
    }
}

/// Full telemetry adds phase timing and the event trace on top of the
/// counters, and the per-loop rows come out finite.
#[test]
fn full_telemetry_yields_phases_and_trace() {
    let done = run_synfire(ObsMode::CountersAndTrace, QueueKind::Calendar, 4);
    let t = done.machine.telemetry();
    assert!(t.ns_per_neuron().is_finite(), "{}", t.ns_per_neuron());
    assert!(
        t.ns_per_synaptic_event().is_finite(),
        "{}",
        t.ns_per_synaptic_event()
    );
    let share = t.barrier_wait_share();
    assert!((0.0..=1.0).contains(&share), "barrier share {share}");
    assert!(t.trace().next().is_some(), "trace must capture spikes");
    assert!(t.shards().len() > 1, "sharded run reports per-shard rows");
    // The report surfaces the telemetry section only when enabled.
    assert!(done.report().contains("telemetry:"), "{}", done.report());
    let quiet = run_synfire(ObsMode::Disabled, QueueKind::Calendar, 4);
    assert!(!quiet.report().contains("telemetry:"));
    assert!(!quiet.machine.telemetry().is_enabled());
}

/// Segment summaries partition the session's totals: per-segment spike
/// deltas sum to the run's spike count, whatever the segment cuts (and
/// telemetry accumulates across segments rather than resetting).
#[test]
fn session_segment_summaries_partition_the_run() {
    let net = synfire_net();
    let cfg = synfire_cfg(ObsMode::Counters, QueueKind::Calendar, 4);
    let mut session = Simulation::build(&net, cfg)
        .expect("synfire fits a 4x4 machine")
        .into_session();
    session.run_for(30).run_for(50).run_for(20);
    let summaries = session.segment_summaries().to_vec();
    assert_eq!(summaries.len(), 3);
    assert_eq!(
        (summaries[0].start_ms, summaries[0].ms),
        (0, 30),
        "{summaries:?}"
    );
    assert_eq!(
        (summaries[2].start_ms, summaries[2].ms),
        (80, 20),
        "{summaries:?}"
    );
    let spike_sum: u64 = summaries.iter().map(|s| s.spikes).sum();
    assert_eq!(spike_sum, session.machine().spikes().len() as u64);
    assert_eq!(spike_sum, session.telemetry().total(Counter::Spikes));
    let tick_sum: u64 = summaries.iter().map(|s| s.events).sum();
    assert!(tick_sum > 0);
}
