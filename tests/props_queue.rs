//! The queue-equivalence property: the binary-heap `EventQueue` and the
//! time-bucketed `CalendarQueue` are *the same queue* observationally.
//! Arbitrary interleaved `push`/`push_ranked`/`pop` sequences — with
//! same-tick rank collisions and far-future times that land in the
//! calendar's overflow tier — must produce identical pop sequences
//! (times, payloads and relative order, including FIFO within equal
//! ranks).

use proptest::collection::vec;
use proptest::prelude::*;

use spinn_sim::{CalendarQueue, EventQueue, Queue, SimTime};

/// One scripted queue operation, decoded from raw generator draws.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Push at `now + delta` with `rank` (`rank == 0` exercises the
    /// plain `push` path).
    Push {
        delta: u64,
        rank: u128,
    },
    Pop,
}

/// Decodes `(selector, delta_class, delta_raw, rank)` draws into an op.
///
/// Delta classes deliberately cover the calendar's regimes: same-tick
/// collisions, in-window times, window-boundary times and far-future
/// overflow times (the ring window is 2^14 ticks).
fn decode(selector: u8, delta_class: u8, delta_raw: u16, rank: u8) -> Op {
    if selector < 3 {
        let delta = match delta_class {
            0 => 0,                                  // same tick
            1 => u64::from(delta_raw) % 7,           // dense near-ties
            2 => u64::from(delta_raw),               // in-window (< 2^16)
            _ => u64::from(delta_raw) * 97 + 16_000, // spans the overflow tier
        };
        Op::Push {
            delta,
            rank: u128::from(rank % 5), // few distinct ranks -> collisions
        }
    } else {
        Op::Pop
    }
}

/// Runs the op script against both queues in lockstep, comparing every
/// pop (and the drain at the end). Returns the number of pops compared.
fn run_script(ops: &[Op]) -> usize {
    let mut heap: EventQueue<u64> = EventQueue::new();
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    // Pushes are relative to the last popped time, which keeps the
    // script inside the monotonic-push contract both queues share.
    let mut now = 0u64;
    let mut compared = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Push { delta, rank } => {
                let t = SimTime::new(now + delta);
                let payload = i as u64;
                if rank == 0 {
                    Queue::push(&mut heap, t, payload);
                    Queue::push(&mut cal, t, payload);
                } else {
                    heap.push_ranked(t, rank, payload);
                    cal.push_ranked(t, rank, payload);
                }
            }
            Op::Pop => {
                assert_eq!(heap.peek_time(), cal.peek_time(), "peek before pop {i}");
                let (a, b) = (heap.pop(), cal.pop());
                assert_eq!(a, b, "pop divergence at op {i}");
                if let Some((t, _)) = a {
                    now = t.ticks();
                }
                compared += 1;
            }
        }
        assert_eq!(heap.len(), cal.len(), "len divergence at op {i}");
        assert_eq!(
            heap.peak_len(),
            cal.peak_len(),
            "occupancy-gauge divergence at op {i}"
        );
    }
    loop {
        let (a, b) = (heap.pop(), cal.pop());
        assert_eq!(a, b, "drain divergence");
        compared += 1;
        if a.is_none() {
            break;
        }
    }
    compared
}

proptest! {
    /// The headline property: arbitrary interleavings agree.
    #[test]
    fn heap_and_calendar_pop_identically(
        raw in vec((0u8..4, 0u8..4, any::<u16>(), 0u8..8), 0..600),
    ) {
        let ops: Vec<Op> = raw
            .into_iter()
            .map(|(s, dc, dr, r)| decode(s, dc, dr, r))
            .collect();
        run_script(&ops);
    }

    /// Heavy same-tick collision pressure: every push lands on one of a
    /// handful of instants with one of a handful of ranks, so ordering
    /// is decided almost entirely by (rank, insertion seq).
    #[test]
    fn dense_same_tick_rank_collisions_agree(
        raw in vec((0u8..5, 0u8..3, 0u8..4), 0..500),
    ) {
        let ops: Vec<Op> = raw
            .into_iter()
            .map(|(s, tick, rank)| {
                if s < 4 {
                    Op::Push { delta: u64::from(tick), rank: u128::from(rank) }
                } else {
                    Op::Pop
                }
            })
            .collect();
        run_script(&ops);
    }
}

/// The occupancy-gauge contract both queue kinds share: `peak_len`
/// rises with pushes, survives pops, resets to zero on `drain_ranked`
/// (and `clear`), and after restoring the drained items equals exactly
/// the restored count — whatever tier (ring or overflow) the calendar
/// held them in.
#[test]
fn occupancy_gauge_agrees_across_drain_and_restore() {
    let mut heap: EventQueue<u64> = EventQueue::new();
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    // Mixed in-window and overflow-tier times, with rank collisions.
    for i in 0..64u64 {
        let t = SimTime::new(if i % 3 == 0 { i * 50_000 } else { i });
        heap.push_ranked(t, u128::from(i % 4), i);
        cal.push_ranked(t, u128::from(i % 4), i);
    }
    assert_eq!(heap.peak_len(), 64);
    assert_eq!(cal.peak_len(), 64);
    // Pops lower the length but not the high-water mark.
    for _ in 0..10 {
        assert_eq!(heap.pop(), cal.pop());
    }
    assert_eq!(heap.peak_len(), 64);
    assert_eq!(cal.peak_len(), 64);

    // Checkpoint: drain resets the gauge on both kinds.
    let heap_items = heap.drain_ranked();
    let cal_items = cal.drain_ranked();
    assert_eq!(heap_items, cal_items, "drain order must agree");
    assert_eq!(heap.peak_len(), 0, "drain must reset the heap gauge");
    assert_eq!(cal.peak_len(), 0, "drain must reset the calendar gauge");

    // Restore: the gauge climbs back to exactly the restored count.
    for (t, rank, e) in heap_items {
        heap.push_ranked(t, rank, e);
        cal.push_ranked(t, rank, e);
    }
    assert_eq!(heap.peak_len(), 54);
    assert_eq!(cal.peak_len(), 54);

    // And clear behaves like drain.
    heap.clear();
    cal.clear();
    assert_eq!(heap.peak_len(), 0);
    assert_eq!(cal.peak_len(), 0);
}

/// Deterministic smoke case: a burst per tick with overflow re-arming,
/// shaped like the machine's timer/packet pattern (kept out of the
/// proptest macro so a failure here pinpoints the regime).
#[test]
fn timer_like_pattern_agrees() {
    let mut ops = Vec::new();
    for tick in 0..40u64 {
        // A far-future "timer" rearm (overflow tier) ...
        ops.push(Op::Push {
            delta: 1_000_000,
            rank: 0,
        });
        // ... and a same-tick burst with colliding ranks.
        for j in 0..30u64 {
            ops.push(Op::Push {
                delta: 0,
                rank: u128::from(j % 3),
            });
        }
        for _ in 0..28 {
            ops.push(Op::Pop);
        }
        let _ = tick;
    }
    let compared = run_script(&ops);
    assert!(compared > 1000);
}
