//! Fault-injection integration tests: the fault-tolerance machinery the
//! paper builds in at every level (§2.2, §5.2, §5.3).

use spinnaker::machine::boot::{BootConfig, BootSim};
use spinnaker::prelude::*;

fn rs() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
}

/// Source on one chip driving a target population across the machine.
fn feed_forward() -> (NetworkGraph, PopulationId, PopulationId) {
    let mut net = NetworkGraph::new();
    let a = net.population("src", 150, rs(), 10.0);
    let b = net.population("dst", 150, rs(), 0.0);
    net.project(
        a,
        b,
        Connector::FixedFanOut(25),
        Synapses::constant(600, 1),
        8,
    );
    (net, a, b)
}

#[test]
fn emergency_routing_preserves_function_under_link_failure() {
    let (net, _, b) = feed_forward();
    // Healthy baseline.
    let cfg = SimConfig::new(6, 6).with_placer(Placer::Random { seed: 5 });
    let healthy = Simulation::build(&net, cfg.clone()).unwrap().run(200);
    let healthy_count = healthy.spike_count(b);
    assert!(healthy_count > 0);

    // Fail every link of chip (1,1) except one — heavy local damage.
    let mut sim = Simulation::build(&net, cfg.clone()).unwrap();
    for d in [Direction::East, Direction::NorthEast, Direction::North] {
        sim.fail_link(NodeCoord::new(1, 1), d);
    }
    let damaged = sim.run(200);
    let damaged_count = damaged.spike_count(b);
    // Emergency routing may add latency but the network keeps firing.
    assert!(
        damaged_count as f64 > healthy_count as f64 * 0.8,
        "function lost under link failure: {damaged_count} vs {healthy_count}"
    );
}

#[test]
fn without_emergency_routing_failures_lose_spikes() {
    let (net, _, b) = feed_forward();
    // Find a link on the spike path by probing with the healthy run.
    let cfg_off = {
        let mut c = SimConfig::new(4, 4).with_placer(Placer::RoundRobin);
        c.machine.fabric.router.emergency_enabled = false;
        c
    };
    // With round-robin placement on 4x4 x19 cores, src lands on chip 0
    // and dst on chip 0 too (both fit); force distance with random
    // placement instead.
    let cfg_off = SimConfig {
        machine: cfg_off.machine,
        ..SimConfig::new(4, 4).with_placer(Placer::Random { seed: 9 })
    };
    let mut cfg_off = cfg_off;
    cfg_off.machine.fabric.router.emergency_enabled = false;
    let mut cfg_on = cfg_off.clone();
    cfg_on.machine.fabric.router.emergency_enabled = true;

    let kill_all_links_of = NodeCoord::new(2, 2);
    let run = |cfg: SimConfig| {
        let mut sim = Simulation::build(&net, cfg).unwrap();
        for d in [Direction::East, Direction::North, Direction::NorthEast] {
            sim.fail_link(kill_all_links_of, d);
        }
        let done = sim.run(200);
        (done.spike_count(b), done.machine.router_stats().dropped)
    };
    let (with_em, dropped_with) = run(cfg_on);
    let (without_em, dropped_without) = run(cfg_off);
    // Emergency routing can only help (or tie, if no traffic crossed the
    // failed links under this placement).
    assert!(with_em >= without_em);
    assert!(dropped_with <= dropped_without);
}

#[test]
fn boot_tolerates_heavy_core_faults() {
    let mut cfg = BootConfig::new(10, 10);
    cfg.core_fault_prob = 0.4;
    cfg.seed = 17;
    let out = BootSim::run(cfg);
    assert!(!out.election_violated);
    assert_eq!(out.dead_chips, 0, "20 cores at 40% faults: all chips live");
    assert!(out.coords_complete_ns.is_some());
    assert!(out.reports_complete_ns.is_some());
    // Substantial core attrition actually happened.
    assert!(out.healthy_cores < 100 * 20 * 8 / 10);
}

#[test]
fn migration_after_core_loss_preserves_spiking() {
    // Build via the facade, then operate on the machine directly:
    // evict the target population's core and reinstall it elsewhere.
    let mut net = NetworkGraph::new();
    let src = net.population("src", 60, rs(), 11.0);
    let dst = net.population("dst", 60, rs(), 0.0);
    net.project(
        src,
        dst,
        Connector::AllToAll { allow_self: true },
        Synapses::constant(200, 1),
        3,
    );
    let sim = Simulation::build(&net, SimConfig::new(4, 4).with_neurons_per_core(64)).unwrap();
    let dst_slice = sim.placement().slices_of(dst).next().unwrap().clone();
    let src_slice = sim.placement().slices_of(src).next().unwrap().clone();
    let mut sim = sim;
    let machine = sim.machine_mut();

    // Migrate dst's core to a spare core on the same chip (so the
    // routing tree stays valid; only the core bit changes).
    let payload = machine.evict_core(dst_slice.chip, dst_slice.core).unwrap();
    let spare = dst_slice.core + 7;
    machine
        .install_core(dst_slice.chip, spare, payload)
        .unwrap();
    // Rewrite the table entries that delivered to the old core. The
    // installed tables are minimized, so the entry covering the source
    // key may be a widened (merged) one — match by coverage, not by
    // exact key. The router recompiles its lookup structure lazily
    // after the edit.
    let key = spinn_map::keys::core_base_key(src_slice.global_core);
    let router = machine.router_mut(dst_slice.chip);
    let old_entries: Vec<_> = router.table.iter().copied().collect();
    router.table.clear();
    for mut e in old_entries {
        if e.matches(key) && e.route.has_core(dst_slice.core as usize) {
            let links: Vec<Direction> = e.route.links().collect();
            let mut route = spinnaker::noc::table::RouteSet::EMPTY.with_core(spare as usize);
            for l in links {
                route = route.with_link(l);
            }
            e.route = route;
        }
        router.table.insert(e).unwrap();
    }

    let done = sim.run(200);
    assert!(
        done.machine.spikes().iter().any(|s| {
            let (core, _) = spinn_map::keys::split_key(s.key);
            core != src_slice.global_core
        }),
        "migrated population must keep firing"
    );
}
