//! Property-based tests over the mapping pipeline: random networks must
//! always place completely, route as true trees, and load consistently.

use proptest::prelude::*;

use spinnaker::map::graph::{Connector, NetworkGraph, NeuronKind, Synapses};
use spinnaker::map::loader::LoadedApp;
use spinnaker::map::place::{Placement, Placer};
use spinnaker::map::route::RoutingPlan;
use spinnaker::neuron::izhikevich::IzhikevichParams;

fn kind() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
}

/// A random small network: population sizes plus a projection list.
fn arb_net() -> impl Strategy<Value = NetworkGraph> {
    (
        proptest::collection::vec(10u32..200, 1..6),
        proptest::collection::vec((0usize..6, 0usize..6, 0u8..3, 1u8..16), 0..8),
        any::<u64>(),
    )
        .prop_map(|(sizes, projs, seed)| {
            let mut net = NetworkGraph::new();
            let pops: Vec<_> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| net.population(&format!("p{i}"), s, kind(), 1.0))
                .collect();
            for (i, (src, dst, conn, delay)) in projs.into_iter().enumerate() {
                let src = pops[src % pops.len()];
                let dst = pops[dst % pops.len()];
                let connector = match conn {
                    0 => Connector::AllToAll { allow_self: true },
                    1 => Connector::FixedProbability(0.15),
                    _ => Connector::FixedFanOut(4),
                };
                net.project(
                    src,
                    dst,
                    connector,
                    Synapses::constant(100, delay.clamp(1, 16)),
                    seed ^ i as u64,
                );
            }
            net
        })
}

/// 48 cases per commit; `PROPTEST_CASES` (the nightly job sets 1024)
/// overrides it.
fn configured_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(configured_cases(48)))]

    #[test]
    fn placement_always_complete_and_disjoint(
        net in arb_net(),
        placer_sel in 0u8..3,
        seed in any::<u64>(),
    ) {
        let placer = match placer_sel {
            0 => Placer::RoundRobin,
            1 => Placer::Locality,
            _ => Placer::Random { seed },
        };
        let Ok(placement) = Placement::compute(&net, 6, 6, 17, 64, placer) else {
            // Too big for the machine: acceptable outcome, not a bug.
            return Ok(());
        };
        // Complete, disjoint coverage of every population.
        for (p, pop) in net.populations().iter().enumerate() {
            let mut covered = vec![0u8; pop.size as usize];
            for s in placement.slices().iter().filter(|s| s.pop.index() == p) {
                prop_assert!(s.hi <= pop.size);
                prop_assert!(s.lo < s.hi);
                for n in s.lo..s.hi {
                    covered[n as usize] += 1;
                }
            }
            prop_assert!(covered.iter().all(|&c| c == 1));
        }
        // No double-booked cores, never the monitor.
        let mut cores: Vec<u32> = placement.slices().iter().map(|s| s.global_core).collect();
        cores.sort_unstable();
        let before = cores.len();
        cores.dedup();
        prop_assert_eq!(cores.len(), before);
        prop_assert!(placement.slices().iter().all(|s| s.core != 0));
    }

    #[test]
    fn routing_plans_are_loop_free_and_bounded(net in arb_net(), seed in any::<u64>()) {
        let Ok(placement) = Placement::compute(&net, 6, 6, 17, 64, Placer::Random { seed }) else {
            return Ok(());
        };
        let plan = RoutingPlan::build(&net, &placement, 6, 6);
        let stats = plan.stats();
        // Tree edges never exceed what per-destination unicast would use.
        prop_assert!(stats.total_edges <= stats.total_path_len.max(1) * 2 + 36 * stats.trees as u64);
        // Every emitted entry routes somewhere.
        for table in plan.tables() {
            for e in table {
                prop_assert!(!e.route.is_empty());
            }
            prop_assert!(table.len() <= 1024);
        }
        // Entry count identity: emitted + elided = total tree chips with
        // routing work (sanity: elided is never negative / absurd).
        prop_assert!(stats.elided_entries <= stats.total_edges as usize + stats.trees);
    }

    #[test]
    fn loader_synapse_counts_match_expansion(net in arb_net()) {
        let Ok(placement) = Placement::compute(&net, 6, 6, 17, 64, Placer::RoundRobin) else {
            return Ok(());
        };
        let app = LoadedApp::build(&net, &placement);
        let expected: u64 = net
            .projections()
            .iter()
            .map(|p| {
                p.pairs(net.pop(p.src).size, net.pop(p.dst).size).len() as u64
            })
            .sum();
        prop_assert_eq!(app.total_synapses(), expected);
        // Every synapse's delay is in the hardware's 1..=16 range and
        // every target index fits its core's slice.
        for img in &app.images {
            let n = img.neurons.len() as u16;
            for (_, row_idx) in img.matrix.iter_rows() {
                // `row_words` regenerates lazily stored rows without
                // materializing them, so this walks compressed arenas too.
                for w in img.matrix.row_words(row_idx).iter() {
                    prop_assert!((1..=16).contains(&w.delay_ms()));
                    prop_assert!(w.target() < n);
                }
            }
        }
        // Loader byte totals must equal the summed arena sizes.
        let arena_total: u64 = app.images.iter().map(|i| i.matrix.sdram_bytes()).sum();
        prop_assert_eq!(app.total_sdram_bytes(), arena_total);
    }
}
