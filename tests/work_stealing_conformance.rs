//! Work-stealing window conformance: shard over-decomposition
//! (`chunk_factor`) cuts a parallel segment into more chunks than
//! workers so idle workers steal them — and must be completely
//! invisible in results. Every test here pins that invariant three
//! ways: against the committed golden traces, across a mid-run
//! checkpoint/restore that changes the chunking on resume, and on
//! randomized nets against the serial engine. A final group covers the
//! compressed lazy synaptic arena riding the same snapshots.

use proptest::prelude::*;

use spinnaker::machine::machine::SpikeRecord;
use spinnaker::prelude::*;

const RUN_MS: u32 = 200;

fn kind() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
}

// ---------------------------------------------------------------------
// The synfire golden scenario (identical to tests/golden_traces.rs).

fn synfire_net() -> NetworkGraph {
    let mut net = NetworkGraph::new();
    let pops: Vec<_> = (0..8u32)
        .map(|i| {
            net.population(
                &format!("s{i}"),
                128,
                kind(),
                if i == 0 { 9.0 } else { 0.0 },
            )
        })
        .collect();
    for (i, &src) in pops.iter().enumerate() {
        let dst = pops[(i + 1) % pops.len()];
        net.project(
            src,
            dst,
            Connector::FixedFanOut(12),
            Synapses::constant(600, 2),
            i as u64,
        );
    }
    net
}

fn synfire_cfg(queue: QueueKind, threads: u32, chunk_factor: u8) -> SimConfig {
    SimConfig::new(4, 4)
        .with_force_shards(true)
        .with_neurons_per_core(64)
        .with_placer(Placer::Random { seed: 0x60_1D })
        .with_queue(queue)
        .with_threads(threads)
        .with_chunk_factor(chunk_factor)
}

fn golden(name: &str) -> Vec<SpikeRecord> {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.trace"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden trace {}: {e}", path.display()))
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let time_ms: u32 = it.next().expect("time").parse().expect("time_ms");
            let key_str = it.next().expect("key");
            let key = u32::from_str_radix(key_str.trim_start_matches("0x"), 16).expect("key");
            SpikeRecord { time_ms, key }
        })
        .collect()
}

/// Chunked execution replays the committed golden trace exactly, for
/// every queue kind, forced shard count and chunk factor — including
/// `chunk_factor` well above the worker count (everything extra exists
/// only to be stolen).
#[test]
fn golden_synfire_bit_identical_across_chunk_factors() {
    let net = synfire_net();
    let golden = golden("synfire");
    for queue in [QueueKind::Heap, QueueKind::Calendar] {
        for threads in [1u32, 4, 16] {
            for chunk_factor in [1u8, 4] {
                let done = Simulation::build(&net, synfire_cfg(queue, threads, chunk_factor))
                    .expect("synfire fits a 4x4 machine")
                    .run(RUN_MS);
                assert_eq!(
                    done.machine.spikes(),
                    golden.as_slice(),
                    "synfire diverges from golden ({queue} queue, {threads} thread(s), \
                     chunk_factor {chunk_factor})"
                );
            }
        }
    }
}

/// A checkpoint taken under chunked stealing restores onto a machine
/// with *different* chunking (and queue, and thread count) and still
/// finishes on the golden trace. Splits are deliberately not multiples
/// of the 5 ms rebalance epoch, so the cut lands mid-stride between
/// repartitions.
#[test]
fn checkpoint_restore_swaps_chunking_bit_exactly() {
    let net = synfire_net();
    let golden = golden("synfire");
    for (split, queue_a, threads_a, chunks_a, queue_b, threads_b, chunks_b) in [
        (
            73u32,
            QueueKind::Calendar,
            4u32,
            4u8,
            QueueKind::Heap,
            16u32,
            1u8,
        ),
        (111, QueueKind::Heap, 16, 1, QueueKind::Calendar, 4, 6),
        (37, QueueKind::Calendar, 4, 2, QueueKind::Calendar, 1, 4),
    ] {
        let mut session = Simulation::build(&net, synfire_cfg(queue_a, threads_a, chunks_a))
            .expect("synfire fits a 4x4 machine")
            .into_session();
        session.run_for(split);
        let snap = session.checkpoint();
        drop(session);
        let mut resumed =
            RunSession::restore(&net, synfire_cfg(queue_b, threads_b, chunks_b), &snap)
                .expect("snapshot restores onto a fresh build");
        assert_eq!(resumed.elapsed_ms(), split);
        resumed.run_for(RUN_MS - split);
        assert_eq!(
            resumed.machine().spikes(),
            golden.as_slice(),
            "split at {split} ms swapping chunk_factor {chunks_a} -> {chunks_b} \
             ({queue_a}/{threads_a}T -> {queue_b}/{threads_b}T) diverges from golden"
        );
    }
}

// ---------------------------------------------------------------------
// Compressed lazy arena: snapshots must carry a half-materialized
// matrix (some rows touched by DMA, most still generator recipes)
// without disturbing results or forcing materialization.

/// A ring of constant-weight all-to-all projections: analytic for the
/// row generator, so the loader keeps every row as a compressed recipe
/// and only spike-touched rows materialize during the run.
fn lazy_ring_net() -> NetworkGraph {
    let mut net = NetworkGraph::new();
    let pops: Vec<_> = (0..6u32)
        .map(|i| {
            net.population(
                &format!("r{i}"),
                96,
                kind(),
                if i == 0 { 10.0 } else { 0.0 },
            )
        })
        .collect();
    for (i, &src) in pops.iter().enumerate() {
        let dst = pops[(i + 1) % pops.len()];
        net.project(
            src,
            dst,
            Connector::AllToAll { allow_self: false },
            Synapses::constant(24, 1 + (i % 3) as u8),
            0x1A2 ^ i as u64,
        );
    }
    net
}

fn lazy_cfg(queue: QueueKind, threads: u32, chunk_factor: u8) -> SimConfig {
    SimConfig::new(4, 4)
        .with_force_shards(true)
        .with_neurons_per_core(32)
        .with_queue(queue)
        .with_threads(threads)
        .with_chunk_factor(chunk_factor)
}

/// Checkpoint a lazily loaded machine mid-run — after spikes have
/// materialized some rows but long before all of them — and restore
/// onto a fresh (fully lazy) build. The resumed run must finish on the
/// uninterrupted run's exact spike stream, and the restore must not
/// have force-materialized the arena to get there.
#[test]
fn lazy_arena_snapshot_roundtrip_mid_materialization() {
    let net = lazy_ring_net();
    let whole = Simulation::build(&net, lazy_cfg(QueueKind::Calendar, 1, 1))
        .expect("ring fits a 4x4 machine")
        .run(RUN_MS);
    let reference = whole.machine.spikes().to_vec();
    assert!(reference.len() > 50, "workload must actually spike");
    let total_rows = {
        // All rows start lazy: constant all-to-all is analytic.
        let sim = Simulation::build(&net, lazy_cfg(QueueKind::Calendar, 1, 1)).expect("fits");
        let lazy = sim.machine().total_lazy_rows();
        assert!(lazy > 0, "the ring net must load as a lazy arena");
        lazy
    };

    for (split, threads_b, chunks_b) in [(41u32, 4u32, 4u8), (97, 16, 1)] {
        let mut session = Simulation::build(&net, lazy_cfg(QueueKind::Calendar, 4, 4))
            .expect("ring fits a 4x4 machine")
            .into_session();
        session.run_for(split);
        let lazy_at_cut = session.machine().total_lazy_rows();
        assert!(
            lazy_at_cut < total_rows,
            "spikes must have materialized some rows by {split} ms"
        );
        assert!(
            lazy_at_cut > 0,
            "the idle tail of the ring must still be compressed at {split} ms"
        );
        let snap = session.checkpoint();
        drop(session);
        let mut resumed =
            RunSession::restore(&net, lazy_cfg(QueueKind::Heap, threads_b, chunks_b), &snap)
                .expect("snapshot restores onto a fresh lazy build");
        assert!(
            resumed.machine().total_lazy_rows() > 0,
            "restore must revive recipes, not force-materialize the arena"
        );
        resumed.run_for(RUN_MS - split);
        assert_eq!(
            resumed.machine().spikes(),
            reference.as_slice(),
            "lazy-arena split at {split} ms diverges from the uninterrupted run"
        );
    }
}

// ---------------------------------------------------------------------
// Randomized equivalence: chunking is invisible on arbitrary nets.

fn arb_chain_net() -> impl Strategy<Value = NetworkGraph> {
    (2u32..5, 48u32..128, 4u32..10, 0u64..1000).prop_map(|(pops, size, fan, seed)| {
        let mut net = NetworkGraph::new();
        let ids: Vec<_> = (0..pops)
            .map(|i| {
                net.population(
                    &format!("p{i}"),
                    size,
                    kind(),
                    if i == 0 { 9.5 } else { 0.0 },
                )
            })
            .collect();
        for (i, w) in ids.windows(2).enumerate() {
            net.project(
                w[0],
                w[1],
                Connector::FixedFanOut(fan),
                Synapses::constant(550, 1 + (i % 4) as u8),
                seed ^ i as u64,
            );
        }
        net
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random chain nets and random (queue, threads, chunk_factor),
    /// the chunked forced-shard run is bit-identical to the serial
    /// engine's spike stream.
    #[test]
    fn chunked_execution_matches_serial(
        net in arb_chain_net(),
        threads in 2u32..9,
        chunk_factor in 1u8..7,
        calendar in any::<bool>(),
    ) {
        let queue = if calendar { QueueKind::Calendar } else { QueueKind::Heap };
        let serial_cfg = SimConfig::new(4, 4)
            .with_neurons_per_core(64)
            .with_queue(queue);
        let serial = Simulation::build(&net, serial_cfg).expect("fits").run(80);
        let chunked_cfg = SimConfig::new(4, 4)
            .with_neurons_per_core(64)
            .with_queue(queue)
            .with_force_shards(true)
            .with_threads(threads)
            .with_chunk_factor(chunk_factor);
        let chunked = Simulation::build(&net, chunked_cfg).expect("fits").run(80);
        prop_assert_eq!(
            chunked.machine.spikes(),
            serial.machine.spikes(),
            "threads {} chunk_factor {} diverged",
            threads,
            chunk_factor
        );
    }
}
