//! The build-and-run memory model: streaming expansion, the
//! master-population-table + arena core, DTCM/SDRAM admission errors
//! and byte-accounting invariants.

use spinnaker::machine::machine::NeuralMachine;
use spinnaker::map::loader::LoadedApp;
use spinnaker::neuron::izhikevich::IzhikevichNeuron;
use spinnaker::neuron::model::AnyNeuron;
use spinnaker::neuron::synapse::SynapticRow;
use spinnaker::prelude::*;

fn kind() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
}

fn rs_neurons(n: usize) -> Vec<AnyNeuron> {
    (0..n)
        .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
        .collect()
}

fn fan_net(sizes: (u32, u32), k: u32) -> NetworkGraph {
    let mut net = NetworkGraph::new();
    let a = net.population("a", sizes.0, kind(), 8.0);
    let b = net.population("b", sizes.1, kind(), 0.0);
    net.project(
        a,
        b,
        Connector::FixedFanOut(k),
        Synapses::constant(400, 2),
        7,
    );
    net
}

/// A slice too large for the 64 KB DTCM must surface as
/// `SpinnError::Dtcm` from the build pipeline, with honest byte
/// numbers.
#[test]
fn dtcm_overflow_surfaces_from_build() {
    let net = fan_net((1500, 100), 4);
    // 1500 neurons on one core: ring (1500*16*4 B) + state (1500*48 B)
    // far exceeds 64 KB.
    let cfg = SimConfig::new(4, 4).with_neurons_per_core(1500);
    let err = Simulation::build(&net, cfg).unwrap_err();
    match err {
        SpinnError::Dtcm(e) => {
            assert!(e.required > e.available, "{e}");
            assert_eq!(e.available, 64 * 1024);
            assert!(e.to_string().contains("DTCM"));
        }
        other => panic!("expected Dtcm error, got {other}"),
    }
}

/// The machine-level DTCM admission path: `load_core` rejects before
/// any state is installed, and the core slot stays free.
#[test]
fn dtcm_overflow_leaves_core_unloaded() {
    let mut m = NeuralMachine::new(MachineConfig::new(2, 2));
    let err = m
        .load_core(
            NodeCoord::new(0, 0),
            1,
            rs_neurons(2000),
            vec![0.0; 2000],
            0,
        )
        .unwrap_err();
    assert!(err.required > err.available);
    // The slot is still free: a fitting load succeeds afterwards.
    m.load_core(NodeCoord::new(0, 0), 1, rs_neurons(10), vec![0.0; 10], 0)
        .unwrap();
}

/// Loader byte totals must equal the summed arena sizes, before and
/// after the matrices move onto the machine — the invariant behind the
/// per-chip SDRAM capacity check.
#[test]
fn sdram_accounting_is_conserved_across_loading() {
    let net = fan_net((300, 300), 12);
    let placement =
        spinnaker::map::place::Placement::compute(&net, 4, 4, 20, 64, Placer::Locality).unwrap();
    let app = LoadedApp::build(&net, &placement);
    let loader_total = app.total_sdram_bytes();
    let summed_arenas: u64 = app.images.iter().map(|i| i.matrix.sdram_bytes()).sum();
    assert_eq!(loader_total, summed_arenas);
    // 300 sources x 12 synapses = 3600 words.
    assert_eq!(app.total_synapses(), 3600);

    let cfg = SimConfig::new(4, 4).with_neurons_per_core(64);
    let sim = Simulation::build(&net, cfg).unwrap();
    assert_eq!(sim.machine().total_sdram_bytes(), loader_total);
    let pre_occ: u64 = sim
        .machine()
        .chip_occupancy()
        .iter()
        .map(|c| c.sdram_bytes)
        .sum();
    assert_eq!(pre_occ, loader_total);
    // Unchanged after the run (no STDP: nothing is written back).
    let done = sim.run(30);
    assert_eq!(done.machine.total_sdram_bytes(), loader_total);
    let occ_total: u64 = done.occupancy().iter().map(|c| c.sdram_bytes).sum();
    assert_eq!(occ_total, loader_total);
}

/// Empty rows (a source covered by the multicast tree with no synapses
/// on this core) still DMA their 4-byte header; keys outside every
/// master-population-table block count as row misses. The arena core
/// preserves both behaviours of the hash-map predecessor.
#[test]
fn empty_rows_dma_and_unknown_keys_miss() {
    let mk = |with_row: bool| -> NeuralMachine {
        let mut m = NeuralMachine::new(MachineConfig::new(2, 2));
        let chip = NodeCoord::new(0, 0);
        m.load_core(chip, 1, rs_neurons(5), vec![12.0; 5], 0x1000)
            .unwrap();
        if with_row {
            // Explicitly empty rows for the core's own spikes.
            for i in 0..5u32 {
                m.set_row(chip, 1, 0x1000 + i, SynapticRow::new());
            }
        }
        m.router_mut(chip)
            .table
            .insert(spinnaker::noc::table::McTableEntry {
                key: 0x1000,
                mask: 0xFFFF_F000,
                route: spinnaker::noc::table::RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
        m
    };
    let with_rows = mk(true).run(100);
    assert_eq!(with_rows.row_misses(), 0, "empty rows are not misses");
    assert!(
        with_rows.meter().sdram_bytes > 0,
        "empty rows still DMA their header"
    );
    let without_rows = mk(false).run(100);
    assert!(
        without_rows.row_misses() > 0,
        "unknown keys must count as mapping errors"
    );
}

/// STDP writes back into the arena in place through the full build
/// pipeline (loader-built matrices, not manual rows): weights move and
/// write-back DMAs are metered.
#[test]
fn stdp_writes_back_into_loader_built_arena() {
    let net = fan_net((60, 60), 10);
    let cfg = SimConfig::new(4, 4)
        .with_neurons_per_core(64)
        .with_stdp(spinnaker::neuron::stdp::StdpParams::default());
    let done = Simulation::build(&net, cfg).unwrap().run(300);
    assert!(done.machine.weight_writebacks() > 0);
    assert!(!done.machine.spikes().is_empty());
}

/// Per-chip occupancy decomposes the machine totals and respects
/// capacities on a healthy build.
#[test]
fn chip_occupancy_decomposes_machine_state() {
    let net = fan_net((200, 200), 8);
    let cfg = SimConfig::new(4, 4).with_neurons_per_core(64);
    let done = Simulation::build(&net, cfg).unwrap().run(50);
    let occ = done.occupancy();
    assert_eq!(occ.len(), 16);
    let loaded: u32 = occ.iter().map(|c| c.loaded_cores).sum();
    // 200 + 200 neurons at 64/core = ceil(200/64) * 2 = 8 cores.
    assert_eq!(loaded, 8);
    for c in &occ {
        assert!(c.dtcm_bytes <= c.dtcm_capacity, "{c:?}");
        assert!(c.sdram_bytes <= c.sdram_capacity, "{c:?}");
        if c.loaded_cores == 0 {
            assert_eq!(c.dtcm_bytes, 0);
            assert_eq!(c.sdram_bytes, 0);
        }
    }
    assert_eq!(
        occ.iter().map(|c| c.sdram_bytes).sum::<u64>(),
        done.machine.total_sdram_bytes()
    );
    // The report surfaces the same numbers.
    let report = done.report();
    assert!(report.contains("chip occupancy:"), "{report}");
    assert!(report.contains("memory totals:"), "{report}");
}

/// Spike streams through the arena-backed core must be identical for
/// the streaming build regardless of placement (§3.2 virtualized
/// topology) — the refactor's end-to-end sanity check.
#[test]
fn streaming_build_is_placement_independent() {
    let net = fan_net((200, 200), 8);
    let spikes = |placer| {
        let cfg = SimConfig::new(4, 4)
            .with_neurons_per_core(64)
            .with_placer(placer);
        let done = Simulation::build(&net, cfg).unwrap().run(120);
        let mut s = done.spikes();
        s.sort_by_key(|x| (x.time_ms, x.pop.index(), x.neuron));
        s
    };
    assert_eq!(spikes(Placer::Locality), spikes(Placer::Random { seed: 3 }));
}

/// Core eviction and re-installation carry the whole matrix (master
/// population table + arena) across chips intact.
#[test]
fn eviction_carries_the_matrix() {
    let mut m = NeuralMachine::new(MachineConfig::new(2, 2));
    let from = NodeCoord::new(0, 0);
    let to = NodeCoord::new(1, 1);
    m.load_core(from, 1, rs_neurons(4), vec![0.0; 4], 0x9000)
        .unwrap();
    let row: SynapticRow = (0..4)
        .map(|t| spinnaker::neuron::synapse::SynapticWord::new(123, 3, t as u16))
        .collect();
    m.set_row(from, 1, 0x77, row);
    let payload = m.evict_core(from, 1).unwrap();
    assert_eq!(payload.matrix.total_synapses(), 4);
    m.install_core(to, 1, payload).unwrap();
    assert_eq!(m.weight_of(to, 1, 0x77, 2), Some(123));
    assert_eq!(m.weight_of(to, 1, 0x78, 2), None);
}
