//! End-to-end integration tests: network description → placement →
//! routing → loading → real-time simulation → readback.

use spinnaker::prelude::*;

fn rs() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
}

fn fs() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::fast_spiking())
}

/// A small balanced E/I network used across tests.
fn balanced_net() -> (NetworkGraph, PopulationId, PopulationId) {
    let mut net = NetworkGraph::new();
    let exc = net.population("exc", 300, rs(), 9.0);
    let inh = net.population("inh", 75, fs(), 0.0);
    net.project(
        exc,
        inh,
        Connector::FixedProbability(0.1),
        Synapses::uniform((300, 600), (1, 3)),
        1,
    );
    net.project(
        inh,
        exc,
        Connector::FixedProbability(0.1),
        Synapses::constant(-350, 1),
        2,
    );
    (net, exc, inh)
}

#[test]
fn balanced_network_runs_in_real_time() {
    let (net, exc, inh) = balanced_net();
    let done = Simulation::build(&net, SimConfig::new(6, 6))
        .unwrap()
        .run(400);
    let exc_rate = done.mean_rate_hz(exc, 300, 400);
    let inh_rate = done.mean_rate_hz(inh, 75, 400);
    assert!(exc_rate > 2.0, "excitatory rate {exc_rate} Hz too low");
    assert!(inh_rate > 1.0, "inhibitory rate {inh_rate} Hz too low");
    assert_eq!(done.machine.realtime_violations(), 0);
    assert_eq!(done.machine.row_misses(), 0);
    assert_eq!(done.machine.router_stats().dropped, 0);
}

#[test]
fn inhibition_actually_inhibits() {
    // Ablate the inhibitory feedback and check the excitatory rate rises.
    let (net, exc, _) = balanced_net();
    let with_inh = Simulation::build(&net, SimConfig::new(6, 6))
        .unwrap()
        .run(300);

    let mut net_no_inh = NetworkGraph::new();
    let exc2 = net_no_inh.population("exc", 300, rs(), 9.0);
    let inh2 = net_no_inh.population("inh", 75, fs(), 0.0);
    net_no_inh.project(
        exc2,
        inh2,
        Connector::FixedProbability(0.1),
        Synapses::uniform((300, 600), (1, 3)),
        1,
    );
    let without = Simulation::build(&net_no_inh, SimConfig::new(6, 6))
        .unwrap()
        .run(300);
    assert!(
        without.spike_count(exc2) > with_inh.spike_count(exc),
        "inhibition must reduce excitatory firing: {} vs {}",
        without.spike_count(exc2),
        with_inh.spike_count(exc)
    );
}

#[test]
fn spike_latency_well_within_one_ms_even_across_the_machine() {
    // Force source and target onto distant chips with random placement
    // and verify §5.3's delivery claim.
    let mut net = NetworkGraph::new();
    let a = net.population("a", 200, rs(), 10.0);
    let b = net.population("b", 200, rs(), 0.0);
    net.project(
        a,
        b,
        Connector::FixedFanOut(30),
        Synapses::constant(400, 1),
        5,
    );
    let cfg = SimConfig::new(8, 8).with_placer(Placer::Random { seed: 3 });
    let done = Simulation::build(&net, cfg).unwrap().run(200);
    assert!(done.machine.spike_latency().count() > 0);
    let p99 = done.machine.spike_latency().percentile(99.0);
    assert!(
        p99 < 100_000,
        "p99 fabric latency {p99} ns is not 'significantly under 1 ms'"
    );
}

#[test]
fn tiny_router_cam_overflows_gracefully() {
    let (net, _, _) = balanced_net();
    let mut cfg = SimConfig::new(6, 6);
    cfg.machine.fabric.router.table_capacity = 1;
    let err = Simulation::build(&net, cfg).unwrap_err();
    assert!(matches!(err, SpinnError::TableOverflow(_)), "{err}");
}

#[test]
fn dtcm_budget_enforced_through_the_facade() {
    let mut net = NetworkGraph::new();
    net.population("huge", 2000, rs(), 0.0);
    let cfg = SimConfig::new(4, 4).with_neurons_per_core(2000);
    let err = Simulation::build(&net, cfg).unwrap_err();
    assert!(matches!(err, SpinnError::Dtcm(_)), "{err}");
}

#[test]
fn lif_and_izhikevich_coexist() {
    let mut net = NetworkGraph::new();
    let a = net.population("izh", 50, rs(), 10.0);
    let b = net.population("lif", 50, NeuronKind::Lif(LifParams::default()), 0.0);
    net.project(
        a,
        b,
        Connector::AllToAll { allow_self: true },
        Synapses::constant(300, 2),
        1,
    );
    let done = Simulation::build(&net, SimConfig::new(4, 4))
        .unwrap()
        .run(300);
    assert!(done.spike_count(a) > 0);
    assert!(done.spike_count(b) > 0, "LIF targets must fire too");
}

#[test]
fn synaptic_delays_respected_through_full_stack() {
    // Two identical nets differing only in projection delay: the target's
    // first spike shifts by the delay difference.
    let first_spike = |delay: u8| {
        let mut net = NetworkGraph::new();
        let a = net.population("a", 80, rs(), 11.0);
        let b = net.population("b", 80, rs(), 0.0);
        net.project(
            a,
            b,
            Connector::AllToAll { allow_self: true },
            Synapses::constant(150, delay),
            1,
        );
        let done = Simulation::build(&net, SimConfig::new(4, 4))
            .unwrap()
            .run(100);
        let spikes = done.spikes();
        spikes
            .iter()
            .filter(|s| s.pop == b)
            .map(|s| s.time_ms)
            .min()
            .expect("target fired")
    };
    let d1 = first_spike(1);
    let d12 = first_spike(12);
    assert!(
        d12 >= d1 + 8,
        "12 ms delays must shift the response: {d1} -> {d12}"
    );
}

#[test]
fn energy_scales_with_activity() {
    let run_with_bias = |bias: f32| {
        let mut net = NetworkGraph::new();
        net.population("p", 300, rs(), bias);
        let done = Simulation::build(&net, SimConfig::new(4, 4))
            .unwrap()
            .run(200);
        let j = done
            .machine
            .meter()
            .total_joules(&done.machine.config().energy);
        (done.machine.spikes().len(), j)
    };
    let (quiet_spikes, quiet_j) = run_with_bias(0.0);
    let (busy_spikes, busy_j) = run_with_bias(14.0);
    assert_eq!(quiet_spikes, 0);
    assert!(busy_spikes > 1000);
    assert!(
        busy_j > quiet_j,
        "activity must cost energy: {busy_j} vs {quiet_j}"
    );
}

#[test]
fn deterministic_across_builds() {
    let (net, _, _) = balanced_net();
    let run = || {
        Simulation::build(&net, SimConfig::new(6, 6))
            .unwrap()
            .run(150)
            .spikes()
    };
    assert_eq!(run(), run());
}
