//! Golden-trace conformance suite: three seeded scenarios whose spike
//! traces are recorded in `tests/golden/*.trace`. Serial runs, sharded
//! runs (2/4/16 threads) and both event-queue implementations (binary
//! heap and calendar) must all replay every trace **bit-exactly** — the
//! calendar-queue refactor, and any future event-core change, must not
//! move a single spike.
//!
//! Regenerating (only when a change *intentionally* alters behaviour):
//!
//! ```text
//! SPINN_GOLDEN_REGEN=1 cargo test --test golden_traces
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use spinnaker::machine::machine::{NeuralMachine, SpikeRecord};
use spinnaker::neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
use spinnaker::neuron::model::AnyNeuron;
use spinnaker::neuron::synapse::{SynapticRow, SynapticWord};
use spinnaker::noc::table::{McTableEntry, RouteSet};
use spinnaker::prelude::*;
use spinnaker::sim::Xoshiro256;

const RUN_MS: u32 = 200;
const MS_NS: u64 = 1_000_000;

fn kind() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
}

/// Scenario 1 — synfire chain: a ring of stages scattered over the
/// torus by random placement, so the travelling wave crosses shard
/// boundaries at every thread count.
fn synfire(queue: QueueKind, threads: u32) -> Simulation {
    let mut net = NetworkGraph::new();
    let pops: Vec<_> = (0..8u32)
        .map(|i| {
            net.population(
                &format!("s{i}"),
                128,
                kind(),
                if i == 0 { 9.0 } else { 0.0 },
            )
        })
        .collect();
    for (i, &src) in pops.iter().enumerate() {
        let dst = pops[(i + 1) % pops.len()];
        net.project(
            src,
            dst,
            Connector::FixedFanOut(12),
            Synapses::constant(600, 2),
            i as u64,
        );
    }
    let cfg = SimConfig::new(4, 4)
        .with_neurons_per_core(64)
        .with_placer(Placer::Random { seed: 0x60_1D })
        .with_queue(queue)
        .with_force_shards(true)
        .with_threads(threads);
    Simulation::build(&net, cfg).expect("synfire fits a 4x4 machine")
}

/// Scenario 2 — retina pipeline: graded tonic drive across bands (the
/// §5.4 vision front end's rank-order structure) converging on one
/// output population, with per-band synaptic delays.
fn retina(queue: QueueKind, threads: u32) -> Simulation {
    let mut net = NetworkGraph::new();
    let out = net.population("out", 96, kind(), 0.0);
    for g in 0..6u32 {
        // Earlier bands (stronger ganglion response) get stronger drive.
        let drive = 10.0 - 0.8 * g as f32;
        let band = net.population(&format!("band{g}"), 96, kind(), drive);
        net.project(
            band,
            out,
            Connector::FixedFanOut(10),
            Synapses::constant(350, 1 + (g % 8) as u8),
            g as u64,
        );
    }
    let cfg = SimConfig::new(4, 4)
        .with_neurons_per_core(64)
        .with_placer(Placer::Random { seed: 0x2E71 })
        .with_queue(queue)
        .with_force_shards(true)
        .with_threads(threads);
    Simulation::build(&net, cfg).expect("retina net fits a 4x4 machine")
}

/// Scenario 3 — fault injection: a hand-routed machine carrying a
/// seeded random net (randomized weights, delays and fan-in), whose
/// only relay→target route crosses the link that fails *mid-run*
/// (t = 50 ms) with emergency routing disabled. Spikes in flight are
/// dropped and monitor-reissued into the same dead link; the target's
/// raster after the failure is pinned by the trace.
fn faulted_machine(queue: QueueKind) -> NeuralMachine {
    let rs = |n: usize| -> Vec<AnyNeuron> {
        (0..n)
            .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
            .collect()
    };
    let mut cfg = MachineConfig::new(4, 4)
        .with_queue(queue)
        .with_force_shards(true);
    cfg.fabric.router.emergency_enabled = false;
    let mut m = NeuralMachine::new(cfg);
    let a = NodeCoord::new(0, 0); // tonically driven source
    let b = NodeCoord::new(1, 0); // relay
    let c = NodeCoord::new(3, 2); // target: fires only via b -> c
    m.load_core(a, 1, rs(48), vec![11.0; 48], 0x1000).unwrap();
    m.load_core(b, 1, rs(48), vec![0.0; 48], 0x2000).unwrap();
    m.load_core(c, 1, rs(48), vec![0.0; 48], 0x3000).unwrap();
    let table = |m: &mut NeuralMachine, at: NodeCoord, key: u32, route: RouteSet| {
        m.router_mut(at)
            .table
            .insert(McTableEntry {
                key,
                mask: 0xFFFF_F000,
                route,
            })
            .unwrap();
    };
    // a -> b: one hop east. b -> c: northeast at the branch points.
    table(
        &mut m,
        a,
        0x1000,
        RouteSet::EMPTY.with_link(Direction::East),
    );
    table(&mut m, b, 0x1000, RouteSet::EMPTY.with_core(1));
    table(
        &mut m,
        b,
        0x2000,
        RouteSet::EMPTY.with_link(Direction::NorthEast),
    );
    table(&mut m, c, 0x2000, RouteSet::EMPTY.with_core(1));
    // Seeded random connectivity: weights, delays and fan-in patterns.
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_FA17);
    let mut random_row = |p: f64, w_lo: u64, w_span: u64, d_span: u64| -> SynapticRow {
        let mut words = Vec::new();
        for t in 0..48u16 {
            if rng.gen_bool(p) {
                words.push(SynapticWord::new(
                    (w_lo + rng.gen_range_u64(w_span)) as i16,
                    1 + rng.gen_range_u64(d_span) as u8,
                    t,
                ));
            }
        }
        words.into_iter().collect()
    };
    for i in 0..48u32 {
        let row_b = random_row(0.6, 500, 400, 4);
        m.set_row(b, 1, 0x1000 + i, row_b);
        let row_c = random_row(0.5, 550, 350, 3);
        m.set_row(c, 1, 0x2000 + i, row_c);
    }
    // Mid-run: the only b -> c leg dies while spikes are in flight.
    m.queue_fail_link(50 * MS_NS, b, Direction::NorthEast);
    m
}

/// Scenario 4 — fault → repair with a checkpoint *inside* the failure
/// window: the scenario-3 machine's only b -> c leg dies at 50 ms and a
/// queued `RepairLink` brings it back at 120 ms. The run is cut at
/// 80 ms — mid-outage, with the future repair still pending — the
/// machine is snapshotted, restored onto a fresh identical build (the
/// pending `RepairLink` rides the wire codec), and finished. Target
/// spikes stop during the outage and resume after the repair; the
/// concatenated raster is pinned bit-exactly for both queue kinds and
/// every shard count.
fn repaired_machine(queue: QueueKind) -> NeuralMachine {
    let mut m = faulted_machine(queue);
    m.queue_repair_link(120 * MS_NS, NodeCoord::new(1, 0), Direction::NorthEast);
    m
}

fn run_repaired(queue: QueueKind, threads: u32) -> Vec<SpikeRecord> {
    let threads = threads as usize;
    let (m, pending) = repaired_machine(queue).run_segment(Vec::new(), 0, 80, threads);
    let bytes = m.snapshot(&pending);
    // Restore onto a freshly built machine: install_snapshot replaces
    // the fresh build's fault/repair plans with the checkpoint's state
    // (the failure already applied to the fabric, the repair pending).
    let mut fresh = repaired_machine(queue);
    let restored = fresh
        .install_snapshot(&bytes)
        .expect("mid-outage snapshot installs");
    assert_eq!(restored.elapsed_ms, 80);
    let (done, _) = fresh.run_segment(restored.pending, 80, RUN_MS - 80, threads);
    done.spikes().to_vec()
}

fn run_machine(queue: QueueKind, threads: u32) -> Vec<SpikeRecord> {
    let m = faulted_machine(queue);
    let m = if threads > 1 {
        m.run_parallel(RUN_MS, threads as usize)
    } else {
        m.run(RUN_MS)
    };
    m.spikes().to_vec()
}

fn run(
    build: fn(QueueKind, u32) -> Simulation,
    queue: QueueKind,
    threads: u32,
) -> Vec<SpikeRecord> {
    build(queue, threads).run(RUN_MS).machine.spikes().to_vec()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.trace"))
}

fn format_trace(name: &str, spikes: &[SpikeRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# spinn golden trace v1: {name}");
    let _ = writeln!(out, "# run_ms {RUN_MS}  spikes {}", spikes.len());
    for s in spikes {
        let _ = writeln!(out, "{} {:#x}", s.time_ms, s.key);
    }
    out
}

fn parse_trace(text: &str) -> Vec<SpikeRecord> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let time_ms: u32 = it.next().expect("time").parse().expect("time_ms");
            let key_str = it.next().expect("key");
            let key = u32::from_str_radix(key_str.trim_start_matches("0x"), 16).expect("key");
            SpikeRecord { time_ms, key }
        })
        .collect()
}

fn check_scenario(name: &str, run_one: fn(QueueKind, u32) -> Vec<SpikeRecord>, min_spikes: usize) {
    let regen = std::env::var("SPINN_GOLDEN_REGEN").is_ok_and(|v| v == "1");
    // The reference: serial run on the heap queue (the seed's engine).
    let reference = run_one(QueueKind::Heap, 1);
    assert!(
        reference.len() >= min_spikes,
        "{name}: workload too quiet ({} spikes) to pin anything down",
        reference.len()
    );
    let path = golden_path(name);
    if regen {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format_trace(name, &reference)).unwrap();
        eprintln!("regenerated {}", path.display());
    }
    let golden = parse_trace(
        &std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden trace {}: {e}", path.display())),
    );
    assert_eq!(
        reference, golden,
        "{name}: serial heap run diverges from the recorded golden trace"
    );
    for queue in [QueueKind::Heap, QueueKind::Calendar] {
        for threads in [1u32, 2, 4, 16] {
            if queue == QueueKind::Heap && threads == 1 {
                continue; // that is the reference itself
            }
            let got = run_one(queue, threads);
            assert_eq!(
                got, golden,
                "{name}: {queue} queue with {threads} thread(s) diverges from the golden trace"
            );
        }
    }
}

#[test]
fn synfire_chain_replays_golden_trace() {
    check_scenario("synfire", |q, t| run(synfire, q, t), 400);
}

#[test]
fn retina_pipeline_replays_golden_trace() {
    check_scenario("retina", |q, t| run(retina, q, t), 400);
}

#[test]
fn fault_injected_net_replays_golden_trace() {
    check_scenario("fault", run_machine, 200);
}

#[test]
fn fault_repair_cycle_replays_golden_trace() {
    check_scenario("fault_repair", run_repaired, 200);
}

/// The repair must actually bite, and the mid-outage checkpoint must be
/// a no-op: the link ends the run healthy, the target fires again after
/// 120 ms (unlike the never-repaired scenario-3 machine), and cutting
/// at 80 ms + restoring equals running straight through.
#[test]
fn mid_outage_checkpoint_and_repair_fire() {
    let whole = repaired_machine(QueueKind::Calendar).run(RUN_MS);
    assert!(
        !whole
            .fabric()
            .link_failed(NodeCoord::new(1, 0), Direction::NorthEast),
        "the queued repair must leave the link healthy"
    );
    let late_target_spikes = whole
        .spikes()
        .iter()
        .filter(|s| s.key & 0xF000 == 0x3000 && s.time_ms > 125)
        .count();
    assert!(
        late_target_spikes > 0,
        "target must fire again once the relay link is repaired"
    );
    let never_repaired = faulted_machine(QueueKind::Calendar).run(RUN_MS);
    assert_eq!(
        never_repaired
            .spikes()
            .iter()
            .filter(|s| s.key & 0xF000 == 0x3000 && s.time_ms > 125)
            .count(),
        0,
        "without the repair the target stays silent"
    );
    let resumed = run_repaired(QueueKind::Calendar, 1);
    assert_eq!(
        whole.spikes(),
        resumed.as_slice(),
        "checkpoint/restore mid-outage must not move a spike"
    );
}

/// The mid-run fault must actually bite: the fabric's link state after
/// the run shows the scheduled failure, packets were dropped and
/// reissued into the dead link, and the spikes differ from an
/// unfaulted run of the same machine (i.e. the trace pins *faulted*
/// behaviour, not a no-op).
#[test]
fn mid_run_fault_actually_fires() {
    let faulted = faulted_machine(QueueKind::Calendar).run(RUN_MS);
    assert!(faulted
        .fabric()
        .link_failed(NodeCoord::new(1, 0), Direction::NorthEast));
    assert!(
        faulted.router_stats().dropped > 0,
        "dead link must drop in-flight spikes"
    );
    assert!(
        faulted.reissued_packets() > 0,
        "monitor must attempt reissue into the dead link"
    );

    // Same machine, fault schedule stripped: build it identically, then
    // repair the schedule away by re-running without queue_fail_link.
    let healthy = {
        let mut m = faulted_machine(QueueKind::Calendar);
        m.clear_fault_plan();
        m.run(RUN_MS)
    };
    assert_eq!(healthy.router_stats().dropped, 0);
    assert_ne!(
        faulted.spikes(),
        healthy.spikes(),
        "killing the only relay->target route must perturb the raster"
    );
}
