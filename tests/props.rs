//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use spinnaker::link::code::{nrz_decode, nrz_encode, rtz_decode, rtz_encode, Symbol};
use spinnaker::neuron::coding::{rank_order_encode, rank_order_similarity};
use spinnaker::neuron::fixed::Fix1616;
use spinnaker::neuron::ring::InputRing;
use spinnaker::neuron::synapse::SynapticWord;
use spinnaker::noc::mesh::{NodeCoord, Torus};
use spinnaker::noc::packet::{EmergencyState, Packet, PacketKind};
use spinnaker::noc::table::{McTable, McTableEntry, RouteSet};

proptest! {
    // ------------------------------------------------------------------
    // Delay-insensitive codecs

    #[test]
    fn nrz_codec_roundtrip(idx in 0usize..17) {
        let s = Symbol::from_index(idx);
        prop_assert_eq!(nrz_decode(nrz_encode(s)), Some(s));
    }

    #[test]
    fn rtz_codec_roundtrip(idx in 0usize..17) {
        let s = Symbol::from_index(idx);
        prop_assert_eq!(rtz_decode(rtz_encode(s)), Some(s));
    }

    #[test]
    fn corrupting_one_wire_never_decodes_wrong(idx in 0usize..17, wire in 0u8..7) {
        // Flipping one wire of a 2-of-7 codeword yields weight 1 or 3:
        // never a silent wrong decode.
        let s = Symbol::from_index(idx);
        let corrupt = nrz_encode(s) ^ (1 << wire);
        prop_assert_eq!(nrz_decode(corrupt), None);
    }

    // ------------------------------------------------------------------
    // Packets

    #[test]
    fn packet_roundtrip(key in any::<u32>(), payload in any::<Option<u32>>(),
                        ts in 0u8..4, kind in 0u8..3, em in 0u8..3) {
        let p = Packet {
            kind: match kind { 0 => PacketKind::Multicast, 1 => PacketKind::PointToPoint, _ => PacketKind::NearestNeighbour },
            emergency: match em { 0 => EmergencyState::Normal, 1 => EmergencyState::FirstLeg, _ => EmergencyState::SecondLeg },
            timestamp: ts,
            key,
            payload,
        };
        prop_assert_eq!(Packet::decode(p.encode()), Some(p));
    }

    #[test]
    fn packet_single_bit_flips_detected(key in any::<u32>(), bit in 0u32..40) {
        let p = Packet::multicast(key);
        prop_assert_eq!(Packet::decode(p.encode() ^ (1u128 << bit)), None);
    }

    // ------------------------------------------------------------------
    // Hex-torus metric

    #[test]
    fn hex_distance_symmetric(w in 2u32..12, h in 2u32..12,
                              ax in 0u32..12, ay in 0u32..12,
                              bx in 0u32..12, by in 0u32..12) {
        let m = Torus::new(w, h);
        let a = NodeCoord::new(ax % w, ay % h);
        let b = NodeCoord::new(bx % w, by % h);
        prop_assert_eq!(m.hex_distance(a, b), m.hex_distance(b, a));
    }

    #[test]
    fn hex_distance_triangle_inequality(w in 2u32..10, h in 2u32..10,
                                        pts in proptest::array::uniform3((0u32..10, 0u32..10))) {
        let m = Torus::new(w, h);
        let [pa, pb, pc] = pts;
        let a = NodeCoord::new(pa.0 % w, pa.1 % h);
        let b = NodeCoord::new(pb.0 % w, pb.1 % h);
        let c = NodeCoord::new(pc.0 % w, pc.1 % h);
        prop_assert!(m.hex_distance(a, c) <= m.hex_distance(a, b) + m.hex_distance(b, c));
    }

    #[test]
    fn p2p_routes_are_shortest_and_arrive(w in 2u32..10, h in 2u32..10,
                                          ax in 0u32..10, ay in 0u32..10,
                                          bx in 0u32..10, by in 0u32..10) {
        let m = Torus::new(w, h);
        let a = NodeCoord::new(ax % w, ay % h);
        let b = NodeCoord::new(bx % w, by % h);
        let route = m.p2p_route(a, b);
        prop_assert_eq!(route.len() as u64, m.hex_distance(a, b));
        let mut cur = a;
        for d in route {
            cur = m.neighbour(cur, d);
        }
        prop_assert_eq!(cur, b);
    }

    // ------------------------------------------------------------------
    // Ternary CAM

    #[test]
    fn mc_table_first_match_semantics(
        entries in proptest::collection::vec((any::<u32>(), any::<u32>(), 0u32..64), 0..20),
        probe in any::<u32>(),
    ) {
        let mut table = McTable::new(64);
        for &(key, mask, bits) in &entries {
            table.insert(McTableEntry { key, mask, route: RouteSet::from_bits(bits) }).unwrap();
        }
        // Reference: first matching entry in order.
        let expect = entries
            .iter()
            .find(|(k, m, _)| probe & m == k & m)
            .map(|&(_, _, bits)| RouteSet::from_bits(bits));
        prop_assert_eq!(table.lookup(probe), expect);
    }

    // ------------------------------------------------------------------
    // Synaptic words

    #[test]
    fn synaptic_word_roundtrip(w in any::<i16>(), d in 1u8..=16, t in 0u16..=0xFFF) {
        let s = SynapticWord::new(w, d, t);
        prop_assert_eq!(s.weight_raw(), w);
        prop_assert_eq!(s.delay_ms(), d);
        prop_assert_eq!(s.target(), t);
    }

    // ------------------------------------------------------------------
    // Deferred-event ring: the soft-delay invariant

    #[test]
    fn ring_delivers_at_exact_delay(
        deposits in proptest::collection::vec((1u8..=16, 0usize..8, -1000i32..1000), 1..40),
    ) {
        let mut ring = InputRing::new(8);
        // Expected arrival: tick t (1-based) accumulates deposits with
        // delay == t made at tick 0.
        let mut expected = vec![[0i64; 8]; 17];
        for &(d, n, w) in &deposits {
            ring.deposit(d, n, w);
            expected[d as usize][n] += w as i64;
        }
        for (t, exp) in expected.iter().enumerate().skip(1) {
            let drained = ring.tick().to_vec();
            for n in 0..8 {
                prop_assert_eq!(drained[n] as i64, exp[n],
                    "tick {}, neuron {}", t, n);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fixed point

    #[test]
    fn fix1616_matches_f64_within_bounds(a in -30000.0f32..30000.0, b in -30000.0f32..30000.0) {
        let fa = Fix1616::from_f32(a);
        let fb = Fix1616::from_f32(b);
        // Addition: saturating, else exact on the quantized inputs.
        let sum = fa + fb;
        let ref_sum = (fa.to_f64() + fb.to_f64()).clamp(Fix1616::MIN.to_f64(), Fix1616::MAX.to_f64());
        prop_assert!((sum.to_f64() - ref_sum).abs() <= 1.0 / 65536.0,
            "sum {} vs {}", sum.to_f64(), ref_sum);
    }

    #[test]
    fn fix1616_mul_commutative(a in -150.0f32..150.0, b in -150.0f32..150.0) {
        let fa = Fix1616::from_f32(a);
        let fb = Fix1616::from_f32(b);
        prop_assert_eq!(fa * fb, fb * fa);
    }

    // ------------------------------------------------------------------
    // Rank-order codes

    #[test]
    fn rank_order_is_ordered_subset(values in proptest::collection::vec(0.0f64..100.0, 1..40),
                                    n in 1usize..10) {
        let code = rank_order_encode(&values, n, 0.0);
        prop_assert!(code.len() <= n);
        // Indices are unique and in range.
        let mut seen = std::collections::HashSet::new();
        for &i in &code.order {
            prop_assert!((i as usize) < values.len());
            prop_assert!(seen.insert(i));
        }
        // Values are non-increasing along the order.
        for w in code.order.windows(2) {
            prop_assert!(values[w[0] as usize] >= values[w[1] as usize]);
        }
    }

    #[test]
    fn rank_order_self_similarity_is_one(values in proptest::collection::vec(0.1f64..100.0, 4..30)) {
        let code = rank_order_encode(&values, 8, 0.0);
        if !code.is_empty() {
            let s = rank_order_similarity(&code, &code, values.len(), 0.8);
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
