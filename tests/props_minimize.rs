//! Property-based tests for routing-table minimization: over random
//! networks × placements, the minimized plan must yield an identical
//! `RouteSet` for every live key wherever the key's packets can go, and
//! no dead key may gain a spurious table hit (it must keep
//! default-routing) after minimization. The compiled lookup must agree
//! with the linear CAM scan on every table it is handed.

use proptest::prelude::*;

use spinnaker::map::graph::{Connector, NetworkGraph, NeuronKind, Synapses};
use spinnaker::map::keys::neuron_key;
use spinnaker::map::place::{Placement, Placer};
use spinnaker::map::route::RoutingPlan;
use spinnaker::neuron::izhikevich::IzhikevichParams;
use spinnaker::noc::compiled::CompiledTable;
use spinnaker::noc::table::{McTable, McTableEntry, RouteSet};

fn kind() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
}

/// A random small network (population sizes plus a projection list).
fn arb_net() -> impl Strategy<Value = NetworkGraph> {
    (
        proptest::collection::vec(10u32..200, 1..6),
        proptest::collection::vec((0usize..6, 0usize..6, 0u8..3, 1u8..16), 0..8),
        any::<u64>(),
    )
        .prop_map(|(sizes, projs, seed)| {
            let mut net = NetworkGraph::new();
            let pops: Vec<_> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| net.population(&format!("p{i}"), s, kind(), 1.0))
                .collect();
            for (i, (src, dst, conn, delay)) in projs.into_iter().enumerate() {
                let src = pops[src % pops.len()];
                let dst = pops[dst % pops.len()];
                let connector = match conn {
                    0 => Connector::AllToAll { allow_self: true },
                    1 => Connector::FixedProbability(0.15),
                    _ => Connector::FixedFanOut(4),
                };
                net.project(
                    src,
                    dst,
                    connector,
                    Synapses::constant(100, delay.clamp(1, 16)),
                    seed ^ i as u64,
                );
            }
            net
        })
}

/// Linear first-match lookup over raw entries.
fn lookup(entries: &[McTableEntry], key: u32) -> Option<RouteSet> {
    entries.iter().find(|e| e.matches(key)).map(|e| e.route)
}

/// 32 cases per commit; `PROPTEST_CASES` (the nightly job sets 1024)
/// overrides it.
fn configured_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(configured_cases(32)))]

    #[test]
    fn minimized_tables_preserve_all_live_routes(
        net in arb_net(),
        placer_sel in 0u8..3,
        seed in any::<u64>(),
    ) {
        let placer = match placer_sel {
            0 => Placer::RoundRobin,
            1 => Placer::Locality,
            _ => Placer::Random { seed },
        };
        let Ok(placement) = Placement::compute(&net, 6, 6, 17, 64, placer) else {
            return Ok(()); // too big for the machine: not a bug
        };
        let plan = RoutingPlan::build(&net, &placement, 6, 6);
        let min = plan.minimized();

        prop_assert!(min.total_entries() <= plan.total_entries());
        prop_assert_eq!(min.stats().pre_minimize_entries, plan.total_entries());

        // Behavioural equivalence: every source key walks both table
        // sets to identical delivery sets.
        prop_assert_eq!(plan.verify_against(&min), 0);

        // Per-chip: wherever a live key had a table hit, the minimized
        // table yields the identical RouteSet.
        for slice in placement.slices() {
            for neuron in [0, slice.len() - 1] {
                let key = neuron_key(slice.global_core, neuron);
                for (orig, small) in plan.tables().iter().zip(min.tables()) {
                    if let Some(route) = lookup(orig, key) {
                        prop_assert_eq!(lookup(small, key), Some(route));
                    }
                }
            }
        }

        // Dead keys (outside every population span) must keep missing:
        // no spurious table hit vs. default-route after minimization.
        let end_of_spans = placement
            .key_spans()
            .iter()
            .map(|&(base, width)| base + width)
            .max()
            .unwrap_or(0);
        for dead_block in [end_of_spans, end_of_spans + 1, 0x1F_FFFF] {
            let key = dead_block << 11;
            for (orig, small) in plan.tables().iter().zip(min.tables()) {
                prop_assert_eq!(lookup(orig, key), None);
                prop_assert_eq!(lookup(small, key), None);
            }
        }
    }

    #[test]
    fn compiled_lookup_matches_linear_scan_on_minimized_tables(
        net in arb_net(),
        seed in any::<u64>(),
    ) {
        let Ok(placement) = Placement::compute(&net, 6, 6, 17, 64, Placer::Random { seed }) else {
            return Ok(());
        };
        let min = RoutingPlan::build(&net, &placement, 6, 6).minimized();
        for entries in min.tables() {
            if entries.is_empty() {
                continue;
            }
            let mut table = McTable::new(1024);
            for &e in entries {
                table.insert(e).unwrap();
            }
            let compiled = CompiledTable::compile(&table);
            for slice in placement.slices() {
                let key = neuron_key(slice.global_core, 0);
                prop_assert_eq!(compiled.lookup(key), table.lookup(key));
            }
            prop_assert_eq!(compiled.lookup(u32::MAX), table.lookup(u32::MAX));
        }
    }
}
