//! Facade-level tests of the extension features: STDP through
//! `SimConfig`, SDRAM capacity enforcement, and monitor packet re-issue.

use spinnaker::neuron::stdp::StdpParams;
use spinnaker::prelude::*;

fn rs() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
}

#[test]
fn stdp_through_the_facade_writes_back() {
    let mut net = NetworkGraph::new();
    let pre = net.population("pre", 60, rs(), 11.0);
    let post = net.population("post", 60, rs(), 0.0);
    net.project(
        pre,
        post,
        Connector::FixedFanOut(20),
        Synapses::constant(500, 1),
        5,
    );

    let plastic = Simulation::build(&net, SimConfig::new(2, 2).with_stdp(StdpParams::default()))
        .unwrap()
        .run(300);
    assert!(plastic.machine.weight_writebacks() > 0);

    let static_run = Simulation::build(&net, SimConfig::new(2, 2))
        .unwrap()
        .run(300);
    assert_eq!(static_run.machine.weight_writebacks(), 0);
}

#[test]
fn stdp_runs_are_deterministic() {
    let mut net = NetworkGraph::new();
    let pre = net.population("pre", 40, rs(), 11.0);
    let post = net.population("post", 40, rs(), 0.0);
    net.project(
        pre,
        post,
        Connector::FixedFanOut(10),
        Synapses::constant(450, 2),
        5,
    );
    let run = || {
        let done = Simulation::build(&net, SimConfig::new(2, 2).with_stdp(StdpParams::default()))
            .unwrap()
            .run(200);
        (done.spikes(), done.machine.weight_writebacks())
    };
    assert_eq!(run(), run());
}

#[test]
fn sdram_overflow_detected() {
    // A single chip receiving an enormous synaptic matrix: 2000 sources
    // x all-to-all x 2000 targets on a 1x1 machine ≈ 16 M synapses
    // ≈ 64 MB — fits; so shrink the configured SDRAM instead.
    let mut net = NetworkGraph::new();
    let a = net.population("a", 1000, rs(), 0.0);
    let b = net.population("b", 1000, rs(), 0.0);
    net.project(
        a,
        b,
        Connector::AllToAll { allow_self: true },
        Synapses::constant(10, 1),
        1,
    );
    let mut cfg = SimConfig::new(2, 2);
    cfg.machine.sdram_bytes = 1024 * 1024; // 1 MB: far too small
    let err = Simulation::build(&net, cfg).unwrap_err();
    assert!(matches!(err, SpinnError::Sdram(_)), "{err}");
    assert!(err.to_string().contains("SDRAM"));

    // With the real 128 MB it builds fine.
    let ok = Simulation::build(&net, SimConfig::new(2, 2));
    assert!(ok.is_ok());
}

#[test]
fn reissue_is_bounded_by_timestamp_field() {
    // Permanently unroutable traffic: fail the only route with emergency
    // off, tiny queues. Reissues must happen but terminate (≤ 3 per
    // packet), so the run completes.
    let mut net = NetworkGraph::new();
    let a = net.population("a", 100, rs(), 12.0);
    let b = net.population("b", 100, rs(), 0.0);
    net.project(
        a,
        b,
        Connector::FixedFanOut(10),
        Synapses::constant(400, 1),
        2,
    );
    let mut cfg = SimConfig::new(2, 2).with_placer(Placer::Random { seed: 4 });
    cfg.machine.fabric.out_queue_cap = 1;
    cfg.machine.fabric.router.wait1_ns = 50;
    cfg.machine.fabric.router.wait2_ns = 50;
    cfg.machine.fabric.router.emergency_enabled = false;
    let done = Simulation::build(&net, cfg).unwrap().run(150);
    let dropped = done.machine.router_stats().dropped;
    let reissued = done.machine.reissued_packets();
    if dropped > 0 {
        assert!(reissued > 0, "drops must trigger monitor re-issue");
        // Each original packet can be reissued at most 3 times.
        assert!(reissued <= dropped * 3 + 3);
    }
}
