//! Session-resume conformance suite: checkpoint/restore must be
//! invisible. For every golden-trace scenario, running through a
//! [`RunSession`] — whole, split at an arbitrary point, or split with a
//! serialize → restore cycle at the cut — replays the committed trace
//! bit-exactly, across both event-queue implementations and 1/2/4/16
//! worker threads (resuming onto a *different* queue kind and thread
//! count than the checkpoint was taken on).
//!
//! Also pinned here: checkpoints taken while events are in flight
//! (mid-tick timer work, packets on the wire), stimulus-source RNG
//! stream continuity, STDP toggling between segments, and a proptest
//! over random split points.

use proptest::prelude::*;
use spinnaker::machine::machine::{NeuralMachine, SpikeRecord};
use spinnaker::neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
use spinnaker::neuron::model::AnyNeuron;
use spinnaker::neuron::synapse::{SynapticRow, SynapticWord};
use spinnaker::noc::table::{McTableEntry, RouteSet};
use spinnaker::prelude::*;
use spinnaker::sim::Xoshiro256;

const RUN_MS: u32 = 200;
const MS_NS: u64 = 1_000_000;

fn kind() -> NeuronKind {
    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
}

// ---------------------------------------------------------------------
// The golden scenarios (identical to tests/golden_traces.rs).

fn synfire_net() -> NetworkGraph {
    let mut net = NetworkGraph::new();
    let pops: Vec<_> = (0..8u32)
        .map(|i| {
            net.population(
                &format!("s{i}"),
                128,
                kind(),
                if i == 0 { 9.0 } else { 0.0 },
            )
        })
        .collect();
    for (i, &src) in pops.iter().enumerate() {
        let dst = pops[(i + 1) % pops.len()];
        net.project(
            src,
            dst,
            Connector::FixedFanOut(12),
            Synapses::constant(600, 2),
            i as u64,
        );
    }
    net
}

fn synfire_cfg(queue: QueueKind, threads: u32) -> SimConfig {
    SimConfig::new(4, 4)
        .with_force_shards(true)
        .with_neurons_per_core(64)
        .with_placer(Placer::Random { seed: 0x60_1D })
        .with_queue(queue)
        .with_threads(threads)
}

fn retina_net() -> NetworkGraph {
    let mut net = NetworkGraph::new();
    let out = net.population("out", 96, kind(), 0.0);
    for g in 0..6u32 {
        let drive = 10.0 - 0.8 * g as f32;
        let band = net.population(&format!("band{g}"), 96, kind(), drive);
        net.project(
            band,
            out,
            Connector::FixedFanOut(10),
            Synapses::constant(350, 1 + (g % 8) as u8),
            g as u64,
        );
    }
    net
}

fn retina_cfg(queue: QueueKind, threads: u32) -> SimConfig {
    SimConfig::new(4, 4)
        .with_force_shards(true)
        .with_neurons_per_core(64)
        .with_placer(Placer::Random { seed: 0x2E71 })
        .with_queue(queue)
        .with_threads(threads)
}

/// The hand-built fault-injection machine of the `fault` golden trace:
/// its only relay→target route dies mid-run at t = 50 ms.
fn faulted_machine(queue: QueueKind) -> NeuralMachine {
    let rs = |n: usize| -> Vec<AnyNeuron> {
        (0..n)
            .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
            .collect()
    };
    let mut cfg = MachineConfig::new(4, 4)
        .with_force_shards(true)
        .with_queue(queue);
    cfg.fabric.router.emergency_enabled = false;
    let mut m = NeuralMachine::new(cfg);
    let a = NodeCoord::new(0, 0);
    let b = NodeCoord::new(1, 0);
    let c = NodeCoord::new(3, 2);
    m.load_core(a, 1, rs(48), vec![11.0; 48], 0x1000).unwrap();
    m.load_core(b, 1, rs(48), vec![0.0; 48], 0x2000).unwrap();
    m.load_core(c, 1, rs(48), vec![0.0; 48], 0x3000).unwrap();
    let table = |m: &mut NeuralMachine, at: NodeCoord, key: u32, route: RouteSet| {
        m.router_mut(at)
            .table
            .insert(McTableEntry {
                key,
                mask: 0xFFFF_F000,
                route,
            })
            .unwrap();
    };
    table(
        &mut m,
        a,
        0x1000,
        RouteSet::EMPTY.with_link(Direction::East),
    );
    table(&mut m, b, 0x1000, RouteSet::EMPTY.with_core(1));
    table(
        &mut m,
        b,
        0x2000,
        RouteSet::EMPTY.with_link(Direction::NorthEast),
    );
    table(&mut m, c, 0x2000, RouteSet::EMPTY.with_core(1));
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_FA17);
    let mut random_row = |p: f64, w_lo: u64, w_span: u64, d_span: u64| -> SynapticRow {
        let mut words = Vec::new();
        for t in 0..48u16 {
            if rng.gen_bool(p) {
                words.push(SynapticWord::new(
                    (w_lo + rng.gen_range_u64(w_span)) as i16,
                    1 + rng.gen_range_u64(d_span) as u8,
                    t,
                ));
            }
        }
        words.into_iter().collect()
    };
    for i in 0..48u32 {
        let row_b = random_row(0.6, 500, 400, 4);
        m.set_row(b, 1, 0x1000 + i, row_b);
        let row_c = random_row(0.5, 550, 350, 3);
        m.set_row(c, 1, 0x2000 + i, row_c);
    }
    m.queue_fail_link(50 * MS_NS, b, Direction::NorthEast);
    m
}

fn golden(name: &str) -> Vec<SpikeRecord> {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.trace"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden trace {}: {e}", path.display()))
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let time_ms: u32 = it.next().expect("time").parse().expect("time_ms");
            let key_str = it.next().expect("key");
            let key = u32::from_str_radix(key_str.trim_start_matches("0x"), 16).expect("key");
            SpikeRecord { time_ms, key }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Split-run bit-exactness against the golden traces.

/// Runs a scenario through a session, split at `split` ms with a full
/// checkpoint → serialize → rebuild → restore cycle at the cut. The
/// checkpoint half runs on `(queue, threads)`; the resumed half runs on
/// the *other* queue kind and a different thread count, which a correct
/// snapshot must not be able to tell apart.
fn split_session_spikes(
    net: &NetworkGraph,
    cfg: fn(QueueKind, u32) -> SimConfig,
    queue: QueueKind,
    threads: u32,
    split: u32,
) -> Vec<SpikeRecord> {
    let mut session = Simulation::build(net, cfg(queue, threads))
        .expect("scenario fits the machine")
        .into_session();
    session.run_for(split);
    let snap = session.checkpoint();
    drop(session);
    let other_queue = match queue {
        QueueKind::Heap => QueueKind::Calendar,
        QueueKind::Calendar => QueueKind::Heap,
    };
    let other_threads = if threads == 1 { 4 } else { 1 };
    let mut resumed = RunSession::restore(net, cfg(other_queue, other_threads), &snap)
        .expect("snapshot restores onto a fresh build");
    assert_eq!(resumed.elapsed_ms(), split);
    resumed.run_for(RUN_MS - split);
    resumed.machine().spikes().to_vec()
}

fn check_scenario_sessions(name: &str, net: &NetworkGraph, cfg: fn(QueueKind, u32) -> SimConfig) {
    let golden = golden(name);
    // Session single-segment == golden for every (queue, threads).
    for queue in [QueueKind::Heap, QueueKind::Calendar] {
        for threads in [1u32, 2, 4, 16] {
            let mut session = Simulation::build(net, cfg(queue, threads))
                .expect("scenario fits the machine")
                .into_session();
            session.run_for(RUN_MS);
            assert_eq!(
                session.machine().spikes(),
                golden.as_slice(),
                "{name}: session run ({queue} queue, {threads} thread(s)) diverges from golden"
            );
        }
    }
    // Split + checkpoint + restore onto a different queue/thread count,
    // at an awkward (non-round) split point.
    for (queue, threads, split) in [
        (QueueKind::Calendar, 1u32, 73u32),
        (QueueKind::Heap, 4, 111),
        (QueueKind::Calendar, 16, 37),
    ] {
        let got = split_session_spikes(net, cfg, queue, threads, split);
        assert_eq!(
            got,
            golden,
            "{name}: run({RUN_MS}) != run({split}) + checkpoint/restore + run({}) \
             ({queue} queue, {threads} thread(s))",
            RUN_MS - split
        );
    }
}

#[test]
fn synfire_session_split_resume_matches_golden() {
    check_scenario_sessions("synfire", &synfire_net(), synfire_cfg);
}

#[test]
fn retina_session_split_resume_matches_golden() {
    check_scenario_sessions("retina", &retina_net(), retina_cfg);
}

/// The fault scenario is a hand-built machine (no `Simulation` build),
/// so it exercises the machine-level `run_segment` + `snapshot` +
/// `install_snapshot` API directly — including a checkpoint taken
/// *before* the scheduled mid-run fault has fired (the fault must ride
/// the snapshot) and one after (the dead link state must ride it).
#[test]
fn fault_machine_split_resume_matches_golden() {
    let golden = golden("fault");
    for (queue, split, threads_a, threads_b) in [
        (QueueKind::Calendar, 30u32, 1usize, 4usize), // fault still pending at the cut
        (QueueKind::Heap, 77, 2, 1),                  // fault already fired at the cut
    ] {
        let (m, pending) = faulted_machine(queue).run_segment(Vec::new(), 0, split, threads_a);
        let bytes = m.snapshot(&pending);
        let other = match queue {
            QueueKind::Heap => QueueKind::Calendar,
            QueueKind::Calendar => QueueKind::Heap,
        };
        let mut fresh = faulted_machine(other);
        let restored = fresh.install_snapshot(&bytes).expect("snapshot installs");
        assert_eq!(restored.elapsed_ms, split);
        let (done, _) = fresh.run_segment(restored.pending, split, RUN_MS - split, threads_b);
        assert_eq!(
            done.spikes(),
            golden.as_slice(),
            "fault scenario split at {split} ms diverges ({queue} -> {other})"
        );
        assert!(
            done.fabric()
                .link_failed(NodeCoord::new(1, 0), Direction::NorthEast),
            "the scheduled fault must fire on the restored machine"
        );
    }
}

// ---------------------------------------------------------------------
// Checkpoint under pending events.

/// A machine whose timer handler takes *longer than the 1 ms tick*
/// (inflated per-neuron cost): every segment boundary then falls inside
/// tick processing, so the checkpoint must carry a mid-tick work item,
/// pending handler completions, and packets in flight — and still
/// resume bit-exactly.
fn overloaded_machine(queue: QueueKind) -> NeuralMachine {
    let rs = |n: usize| -> Vec<AnyNeuron> {
        (0..n)
            .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
            .collect()
    };
    let mut cfg = MachineConfig::new(2, 2)
        .with_force_shards(true)
        .with_queue(queue);
    // 60k instructions per neuron at 200 MHz = 0.3 ms/neuron: a 12-neuron
    // core needs 3.6 ms per 1 ms tick — a permanent real-time violation.
    cfg.costs.per_neuron_instr = 60_000;
    let mut m = NeuralMachine::new(cfg);
    let src = NodeCoord::new(0, 0);
    let dst = NodeCoord::new(1, 0);
    m.load_core(src, 1, rs(12), vec![12.0; 12], 0x1000).unwrap();
    m.load_core(dst, 1, rs(12), vec![0.0; 12], 0x2000).unwrap();
    m.router_mut(src)
        .table
        .insert(McTableEntry {
            key: 0x1000,
            mask: 0xFFFF_F000,
            route: RouteSet::EMPTY.with_link(Direction::East),
        })
        .unwrap();
    m.router_mut(dst)
        .table
        .insert(McTableEntry {
            key: 0x1000,
            mask: 0xFFFF_F000,
            route: RouteSet::EMPTY.with_core(1),
        })
        .unwrap();
    for i in 0..12u32 {
        let row: SynapticRow = (0..12)
            .map(|t| SynapticWord::new(900, 1 + (i % 3) as u8, t as u16))
            .collect();
        m.set_row(dst, 1, 0x1000 + i, row);
    }
    m
}

#[test]
fn checkpoint_under_pending_events_resumes_bit_exactly() {
    let whole = overloaded_machine(QueueKind::Calendar).run(40);
    assert!(
        whole.realtime_violations() > 0,
        "the overloaded machine must actually overrun its ticks"
    );
    let (m, pending) = overloaded_machine(QueueKind::Calendar).run_segment(Vec::new(), 0, 17, 1);
    assert!(
        !pending.is_empty(),
        "a boundary inside tick processing must leave events queued"
    );
    let has_core_work = pending.iter().any(|p| {
        matches!(
            p.event,
            spinnaker::machine::machine::MachineEvent::CoreDone { .. }
                | spinnaker::machine::machine::MachineEvent::DmaDone { .. }
                | spinnaker::machine::machine::MachineEvent::InjectSpike { .. }
                | spinnaker::machine::machine::MachineEvent::Noc(_)
        )
    });
    assert!(
        has_core_work,
        "expected in-flight handler/packet events at the cut, got {pending:?}"
    );
    // Serialize, restore onto a fresh build (heap queue), finish.
    let bytes = m.snapshot(&pending);
    let mut fresh = overloaded_machine(QueueKind::Heap);
    let restored = fresh.install_snapshot(&bytes).unwrap();
    let (done, _) = fresh.run_segment(restored.pending, 17, 23, 1);
    assert_eq!(whole.spikes(), done.spikes());
    assert_eq!(whole.realtime_violations(), done.realtime_violations());
    assert_eq!(whole.meter().instructions, done.meter().instructions);
}

// ---------------------------------------------------------------------
// Warm mutation: stimulus sources, STDP toggling.

fn poisson_net() -> (NetworkGraph, PopulationId, PopulationId) {
    let mut net = NetworkGraph::new();
    let input = net.population("input", 64, kind(), 0.0);
    let out = net.population("out", 64, kind(), 0.0);
    net.project(
        input,
        out,
        Connector::FixedFanOut(8),
        Synapses::constant(900, 2),
        7,
    );
    (net, input, out)
}

#[test]
fn poisson_sources_are_split_invariant_and_survive_restore() {
    let (net, input, out) = poisson_net();
    let cfg = || {
        SimConfig::new(4, 4)
            .with_force_shards(true)
            .with_neurons_per_core(32)
    };
    let run_whole = || {
        let mut s = Simulation::build(&net, cfg()).unwrap().into_session();
        s.add_poisson(input, 180.0, 0xF00D);
        s.run_for(120);
        s.machine().spikes().to_vec()
    };
    let whole = run_whole();
    assert!(!whole.is_empty(), "the Poisson drive must produce spikes");
    // Same source, three segments with a serialize/restore in between:
    // the RNG stream must continue, not restart.
    let mut s = Simulation::build(&net, cfg()).unwrap().into_session();
    s.add_poisson(input, 180.0, 0xF00D);
    s.run_for(43);
    let snap = s.checkpoint();
    let mut s = RunSession::restore(&net, cfg().with_threads(2), &snap).unwrap();
    s.run_for(29);
    s.run_for(48);
    assert_eq!(whole, s.machine().spikes());
    assert!(s.spike_count(out) > 0, "drive must propagate to out");
}

#[test]
fn warm_mutation_between_segments() {
    let (net, input, _out) = poisson_net();
    let cfg = SimConfig::new(4, 4)
        .with_force_shards(true)
        .with_neurons_per_core(32)
        .with_stdp(spinnaker::neuron::stdp::StdpParams::default());
    let mut session = Simulation::build(&net, cfg).unwrap().into_session();
    // Job 1: drive with one source.
    session.add_poisson(input, 250.0, 1);
    session.run_for(50);
    let job1 = session.take_spikes();
    assert!(!job1.is_empty(), "job 1 must fire");
    // Job 2: swap the stimulus, freeze plasticity, add a fault.
    session.clear_stimulus_sources();
    session.add_poisson(input, 40.0, 2);
    session.set_stdp(None);
    session.queue_fail_link(60, NodeCoord::new(0, 0), Direction::East);
    let wb_before = session.machine().weight_writebacks();
    session.run_for(50);
    assert_eq!(
        session.machine().weight_writebacks(),
        wb_before,
        "weights must freeze while STDP is off"
    );
    let job2 = session.take_spikes();
    // Job 3: direct stimulation of specific neurons.
    for t in 0..10 {
        session.stimulate(101 + t, input, t % 64);
    }
    session.run_for(50);
    let job3 = session.take_spikes();
    assert_eq!(session.elapsed_ms(), 150);
    // Distinct jobs produced distinct rasters on one resident machine.
    assert_ne!(job1, job2);
    assert_ne!(job2, job3);
}

// ---------------------------------------------------------------------
// Random split points (proptest).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(spinn_proptest_cases(12)))]
    #[test]
    fn random_splits_resume_bit_exactly(
        split in 1u32..99,
        threads_a in 1u32..5,
        threads_b in 1u32..5,
        use_calendar in 0u8..2,
    ) {
        let (net, input, _out) = poisson_net();
        let queue = if use_calendar == 1 { QueueKind::Calendar } else { QueueKind::Heap };
        let cfg = |threads: u32| {
            SimConfig::new(4, 4).with_force_shards(true)
                .with_neurons_per_core(32)
                .with_queue(queue)
                .with_threads(threads)
        };
        let whole = {
            let mut s = Simulation::build(&net, cfg(threads_a)).unwrap().into_session();
            s.add_poisson(input, 200.0, 0xABCD);
            s.run_for(100);
            s.machine().spikes().to_vec()
        };
        let mut s = Simulation::build(&net, cfg(threads_a)).unwrap().into_session();
        s.add_poisson(input, 200.0, 0xABCD);
        s.run_for(split);
        let snap = s.checkpoint();
        let mut s = RunSession::restore(&net, cfg(threads_b), &snap).unwrap();
        s.run_for(100 - split);
        prop_assert_eq!(whole, s.machine().spikes().to_vec());
    }
}

/// Honours `PROPTEST_CASES` like the nightly CI job; defaults low
/// because every case simulates two full runs.
fn spinn_proptest_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}
