//! # spinn-system — a full reproduction of the SpiNNaker architecture
//!
//! This workspace reproduces *Furber & Brown, "Biologically-Inspired
//! Massively-Parallel Architectures — computing beyond a million
//! processors" (DATE 2011)*: a discrete-event simulation of the SpiNNaker
//! machine from the self-timed inter-chip circuits up to
//! billion-neuron-scale real-time spiking neural simulation, plus the
//! experiment harness that regenerates every figure and quantitative
//! claim in the paper.
//!
//! The root crate simply re-exports the workspace members:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`sim`] | deterministic discrete-event kernel, PRNG, statistics |
//! | [`link`] | transition-level self-timed links: 2-of-7 NRZ, 3-of-6 RTZ, Fig.-6 phase converters, glitch studies |
//! | [`noc`] | packets, hex-torus mesh, multicast router, emergency routing, whole-machine fabric |
//! | [`neuron`] | Izhikevich/LIF models (16.16 fixed point), synaptic rows, deferred-event ring, STDP, rank-order codes, retina |
//! | [`machine`] | chips, monitor election, boot, flood-fill loading, the running machine, energy/cost model |
//! | [`par`] | sharded, barrier-synchronized parallel execution of the machine (serial-exact) |
//! | [`map`] | populations/projections, placement, AER keys, multicast-tree routing tables, SDRAM images |
//! | [`spinnaker`] | the PyNN-flavoured public API: build → run → inspect |
//!
//! # Quickstart
//!
//! ```
//! use spinnaker::prelude::*;
//!
//! let mut net = NetworkGraph::new();
//! let exc = net.population(
//!     "exc", 100,
//!     NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()), 9.0);
//! let out = net.population(
//!     "out", 25,
//!     NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()), 0.0);
//! net.project(exc, out, Connector::FixedProbability(0.2),
//!             Synapses::constant(500, 3), 7);
//! let done = Simulation::build(&net, SimConfig::new(4, 4)).unwrap().run(100);
//! assert!(done.spike_count(exc) > 0);
//! ```

pub use spinn_link as link;
pub use spinn_machine as machine;
pub use spinn_map as map;
pub use spinn_neuron as neuron;
pub use spinn_noc as noc;
pub use spinn_par as par;
pub use spinn_sim as sim;
pub use spinnaker;

pub use spinnaker::prelude;
