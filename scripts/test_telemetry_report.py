#!/usr/bin/env python3
"""Unit tests for scripts/telemetry_report.py (stdlib only; CI runs this).

    python3 scripts/test_telemetry_report.py
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import telemetry_report  # noqa: E402


def report(overhead=None, determinism=None, phases=None, skew=None):
    records = []
    for threads, (off, on, frac) in (overhead or {}).items():
        records.append(
            {
                "name": "telemetry_overhead",
                "config": {"threads": threads},
                "metrics": {
                    "spikes_per_sec_off": off,
                    "spikes_per_sec_on": on,
                    "overhead_frac": frac,
                },
            }
        )
    if determinism is not None:
        bit_exact, counter_matches = determinism
        records.append(
            {
                "name": "telemetry_determinism",
                "config": {},
                "metrics": {
                    "bit_exact": bit_exact,
                    "counter_matches": counter_matches,
                    "spikes": 42,
                    "counter_spikes": 42,
                },
            }
        )
    for threads, metrics in (phases or {}).items():
        records.append(
            {
                "name": "phase_breakdown",
                "config": {"threads": threads},
                "metrics": metrics,
            }
        )
    for threads, events in (skew or {}).items():
        records.append(
            {
                "name": "shard_skew",
                "config": {"threads": threads},
                "metrics": {
                    "skew": max(events) / min(events) if events else None,
                    "per_shard_events": events,
                },
            }
        )
    return {
        "experiment": "E17",
        "title": "telemetry test",
        "commit": "deadbeef",
        "mode": "quick",
        "records": records,
    }


class TelemetryReportTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, rep):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(rep, f)
        return path

    def run_main(self, argv):
        """Runs telemetry_report.main, returning the exit code (0 if it
        returns normally)."""
        try:
            telemetry_report.main(argv)
        except SystemExit as e:
            return e.code or 0
        return 0

    def test_overhead_within_bound_passes(self):
        path = self.write(
            "r.json", report(overhead={4: (1000.0, 980.0, 0.02)}, determinism=(True, True))
        )
        self.assertEqual(self.run_main(["--check-overhead", path, "--max", "0.05"]), 0)

    def test_overhead_breach_fails(self):
        path = self.write("r.json", report(overhead={4: (1000.0, 900.0, 0.10)}))
        self.assertEqual(self.run_main(["--check-overhead", path, "--max", "0.05"]), 1)

    def test_negative_overhead_passes(self):
        # Counters-on measuring faster than off is runner noise, not a
        # regression.
        path = self.write("r.json", report(overhead={1: (1000.0, 1010.0, -0.01)}))
        self.assertEqual(self.run_main(["--check-overhead", path]), 0)

    def test_determinism_failure_gates_even_with_low_overhead(self):
        path = self.write(
            "r.json",
            report(overhead={4: (1000.0, 999.0, 0.001)}, determinism=(False, True)),
        )
        self.assertEqual(self.run_main(["--check-overhead", path]), 1)

    def test_counter_mismatch_gates(self):
        path = self.write(
            "r.json",
            report(overhead={4: (1000.0, 999.0, 0.001)}, determinism=(True, False)),
        )
        self.assertEqual(self.run_main(["--check-overhead", path]), 1)

    def test_missing_overhead_frac_fails(self):
        rep = report(overhead={4: (1000.0, 990.0, 0.01)})
        rep["records"][0]["metrics"]["overhead_frac"] = None  # JSON null (NaN)
        path = self.write("r.json", rep)
        self.assertEqual(self.run_main(["--check-overhead", path]), 1)

    def test_gate_with_no_overhead_rows_is_exit_2(self):
        # An empty gate must fail loudly, not pass vacuously.
        path = self.write("r.json", report(determinism=(True, True)))
        self.assertEqual(self.run_main(["--check-overhead", path]), 2)

    def test_missing_file_is_exit_2(self):
        missing = os.path.join(self.dir.name, "BENCH_e99.json")
        self.assertEqual(self.run_main(["--check-overhead", missing]), 2)

    def test_corrupt_json_is_exit_2(self):
        path = os.path.join(self.dir.name, "bad.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        self.assertEqual(self.run_main([path]), 2)

    def test_render_produces_all_sections(self):
        rep = report(
            overhead={4: (1000.0, 980.0, 0.02)},
            determinism=(True, True),
            phases={
                4: {
                    "wall_ms": 120.5,
                    "ns_per_neuron": 85.0,
                    "ns_per_synaptic_event": 6.25,
                    "barrier_wait_share": 0.31,
                    "shard_skew": 1.4,
                }
            },
            skew={4: [100.0, 120.0, 90.0, 110.0]},
        )
        text = telemetry_report.render(rep)
        self.assertIn("phase breakdown", text)
        self.assertIn("ns/neuron", text)
        self.assertIn("per-shard load", text)
        self.assertIn("skew 1.33", text)  # 120/90
        self.assertIn("overhead:", text)
        self.assertIn("bit-exact across modes: True", text)

    def test_render_tolerates_null_metrics(self):
        # Serial rows legitimately carry null (NaN) barrier share.
        rep = report(
            phases={
                1: {
                    "wall_ms": 50.0,
                    "ns_per_neuron": None,
                    "ns_per_synaptic_event": None,
                    "barrier_wait_share": None,
                    "shard_skew": None,
                }
            }
        )
        text = telemetry_report.render(rep)
        self.assertIn("n/a", text)

    def test_committed_artifact_renders_and_gates(self):
        # The real committed BENCH_e17.json must stay renderable and
        # hold the CI overhead bound (the gate step depends on it).
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(root, "BENCH_e17.json")
        self.assertTrue(os.path.exists(path), f"{path} must be committed")
        self.assertEqual(self.run_main([path]), 0)
        self.assertEqual(self.run_main(["--check-overhead", path, "--max", "0.05"]), 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
