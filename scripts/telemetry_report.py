#!/usr/bin/env python3
"""Render or gate the E17 run-telemetry artifact (BENCH_e17.json).

Render mode (human tables):

    python3 scripts/telemetry_report.py BENCH_e17.json

prints the per-thread phase breakdown (ns/neuron, ns/synaptic-event,
barrier-wait share), the per-shard load-skew table, and the telemetry
overhead and determinism rows.

Gate mode (the CI check):

    python3 scripts/telemetry_report.py --check-overhead BENCH_e17.json \
        [--max 0.05]

fails when any ``telemetry_overhead`` row's counters-on overhead
exceeds ``--max``, or when the ``telemetry_determinism`` verdict is not
bit-exact (telemetry that moves a spike is a correctness bug, not an
overhead bug).

Exit codes:

    0  rendered, or every gated row within bounds
    1  overhead above the bound, or determinism verdict failed
    2  usage error, unreadable input, or no gateable rows

Only Python's standard library is used (the build environment is
offline). Unit tests: ``python3 scripts/test_telemetry_report.py``.
"""

import argparse
import json
import os
import sys


def fail_usage(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    if not os.path.exists(path):
        fail_usage(
            f"telemetry report {path} does not exist — a missing artifact must "
            "fail the gate, not skip it. Regenerate with `cargo run --release "
            "-p spinn-bench --bin run_experiments -- E17`"
        )
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail_usage(f"cannot read {path}: {err}")


def records_named(report, name):
    return [r for r in report.get("records", []) if r.get("name") == name]


def fmt_num(value, spec):
    """Formats a metric that may be missing/null (JSON null -> n/a)."""
    if value is None:
        return "n/a"
    return format(float(value), spec)


def render_phase_table(report):
    lines = []
    rows = records_named(report, "phase_breakdown")
    if not rows:
        return lines
    lines.append("phase breakdown (per loop, full telemetry):")
    lines.append(
        f"  {'threads':>8} {'wall ms':>10} {'ns/neuron':>11} "
        f"{'ns/syn-event':>13} {'barrier%':>9} {'skew':>7}"
    )
    for r in rows:
        cfg, m = r.get("config", {}), r.get("metrics", {})
        share = m.get("barrier_wait_share")
        share = "n/a" if share is None else f"{100.0 * float(share):.1f}%"
        lines.append(
            f"  {cfg.get('threads', '?'):>8} {fmt_num(m.get('wall_ms'), '.1f'):>10} "
            f"{fmt_num(m.get('ns_per_neuron'), '.1f'):>11} "
            f"{fmt_num(m.get('ns_per_synaptic_event'), '.2f'):>13} "
            f"{share:>9} {fmt_num(m.get('shard_skew'), '.2f'):>7}"
        )
    return lines


def render_skew_table(report):
    lines = []
    rows = records_named(report, "shard_skew")
    if not rows:
        return lines
    lines.append("per-shard load (events dispatched; skew = max/min):")
    for r in rows:
        cfg, m = r.get("config", {}), r.get("metrics", {})
        events = m.get("per_shard_events") or []
        total = sum(float(e) for e in events) or 1.0
        shares = "  ".join(
            f"s{i}:{100.0 * float(e) / total:.1f}%" for i, e in enumerate(events)
        )
        lines.append(
            f"  {cfg.get('threads', '?'):>3} thread(s)  "
            f"skew {fmt_num(m.get('skew'), '.2f')}  {shares}"
        )
    return lines


def render_overhead(report):
    lines = []
    for r in records_named(report, "telemetry_overhead"):
        cfg, m = r.get("config", {}), r.get("metrics", {})
        frac = m.get("overhead_frac")
        frac = "n/a" if frac is None else f"{100.0 * float(frac):+.2f}%"
        lines.append(
            f"  overhead: {cfg.get('threads', '?'):>2} thread(s)  "
            f"counters on {fmt_num(m.get('spikes_per_sec_on'), ',.0f')} spikes/s  "
            f"off {fmt_num(m.get('spikes_per_sec_off'), ',.0f')}  ({frac})"
        )
    return lines


def render_determinism(report):
    lines = []
    for r in records_named(report, "telemetry_determinism"):
        m = r.get("metrics", {})
        lines.append(
            f"  determinism: bit-exact across modes: {m.get('bit_exact')}; "
            f"spikes counter {fmt_num(m.get('counter_spikes'), '.0f')} "
            f"vs recorded {fmt_num(m.get('spikes'), '.0f')}"
        )
    return lines


def render(report):
    title = report.get("title", "")
    commit = str(report.get("commit", "?"))[:12]
    lines = [
        f"{report.get('experiment', '?')}: {title} "
        f"({report.get('mode', '?')} mode, commit {commit})",
        "",
    ]
    for section in (
        render_phase_table(report),
        render_skew_table(report),
        render_overhead(report),
        render_determinism(report),
    ):
        if section:
            lines.extend(section)
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def check_overhead(report, path, max_frac):
    """Returns the number of gate failures (0 = pass); exits 2 when the
    report has nothing to gate on."""
    overhead_rows = records_named(report, "telemetry_overhead")
    det_rows = records_named(report, "telemetry_determinism")
    if not overhead_rows:
        fail_usage(
            f"{path} has no telemetry_overhead rows to gate on — an empty "
            "gate must fail, not pass"
        )
    failures = 0
    for r in overhead_rows:
        threads = r.get("config", {}).get("threads", "?")
        frac = r.get("metrics", {}).get("overhead_frac")
        if frac is None:
            print(
                f"FAIL: {threads} thread(s): overhead_frac missing/non-finite",
            )
            failures += 1
            continue
        frac = float(frac)
        verdict = "FAIL" if frac > max_frac else "ok"
        print(
            f"{verdict}: {threads} thread(s): counters-on overhead "
            f"{100.0 * frac:+.2f}% (bound {100.0 * max_frac:.1f}%)"
        )
        failures += frac > max_frac
    for r in det_rows:
        m = r.get("metrics", {})
        for key in ("bit_exact", "counter_matches"):
            if m.get(key) is False:
                print(f"FAIL: telemetry_determinism {key} is false")
                failures += 1
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report", help="BENCH_e17.json (or any E17-shaped report)")
    ap.add_argument(
        "--check-overhead",
        action="store_true",
        help="gate mode: fail when counters-on overhead exceeds --max or the "
        "determinism verdict is false",
    )
    ap.add_argument(
        "--max",
        type=float,
        default=0.05,
        help="maximum allowed counters-on overhead fraction (default 0.05)",
    )
    args = ap.parse_args(argv)
    report = load(args.report)

    if args.check_overhead:
        failures = check_overhead(report, args.report, args.max)
        if failures:
            print(f"FAIL: {failures} telemetry gate check(s) failed", file=sys.stderr)
            sys.exit(1)
        print("OK: telemetry overhead within bounds, determinism verdict holds")
        return

    print(render(report), end="")


if __name__ == "__main__":
    main()
