#!/usr/bin/env python3
"""Unit tests for scripts/bench_compare.py (stdlib only; CI runs this).

    python3 scripts/test_bench_compare.py
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def report(
    sweep=None,
    micro=None,
    phase=None,
    resil=None,
    scaling=None,
    memory=None,
    stealing=None,
    serving=None,
    commit="deadbeef",
):
    records = []
    for (mesh, queue, threads, bio_ms), sps in (sweep or {}).items():
        records.append(
            {
                "name": "end_to_end_sweep",
                "config": {
                    "mesh": mesh,
                    "queue": queue,
                    "threads": threads,
                    "bio_ms": bio_ms,
                },
                "metrics": {"spikes_per_sec": sps},
            }
        )
    for case, ns in (micro or {}).items():
        records.append(
            {
                "name": "queue_microbench",
                "config": {"case": case},
                "metrics": {"calendar_ns_per_op": ns},
            }
        )
    for (threads, bio_ms), metrics in (phase or {}).items():
        records.append(
            {
                "name": "phase_breakdown",
                "config": {"threads": threads, "bio_ms": bio_ms},
                "metrics": dict(metrics),
            }
        )
    for cfg, metrics in scaling or []:
        records.append({"name": "scaling", "config": dict(cfg), "metrics": dict(metrics)})
    for (mesh, arm), metrics in (memory or {}).items():
        records.append(
            {
                "name": "memory",
                "config": {"mesh": mesh, "arm": arm},
                "metrics": dict(metrics),
            }
        )
    for cfg, metrics in stealing or []:
        records.append(
            {"name": "work_stealing", "config": dict(cfg), "metrics": dict(metrics)}
        )
    records.extend(resil or [])
    records.extend(serving or [])
    return {"experiment": "EX", "commit": commit, "records": records}


def scaling_row(chips=65536, cores=1114112, synapses=2**30, bps=1.4):
    """One synthetic E20 scaling row at full-machine scale."""
    return (
        {"mesh": "256x256", "chips": chips, "machine_cores": cores, "threads": 1},
        {"synapses": synapses, "bytes_per_synapse": bps, "wall_ms": 9000.0},
    )


def memory_arms(lazy_bps=1.3, eager_bps=4.5, mesh="64x64"):
    """Paired lazy/eager loader-footprint rows."""
    return {
        (mesh, "lazy"): {"bytes_per_synapse": lazy_bps, "resident_mb": 90.0},
        (mesh, "eager"): {"bytes_per_synapse": eager_bps, "resident_mb": 300.0},
    }


def stealing_rows(
    static_wall=300.0,
    steal_wall=220.0,
    static_share=0.4,
    steal_share=0.15,
    effective=4,
    host_cores=8,
):
    """Paired static/steal work-stealing rows on one skewed mesh."""
    return [
        (
            {
                "mesh": "16x16",
                "arm": arm,
                "threads": 4,
                "effective_threads": effective,
                "host_cores": host_cores,
                "bio_ms": 60,
            },
            {"wall_ms": wall, "barrier_wait_share": share},
        )
        for arm, wall, share in [
            ("static", static_wall, static_share),
            ("steal", steal_wall, steal_share),
        ]
    ]


def resil_records(
    curve=((0.0, 1.0), (0.2, 0.9)),
    gain=0.3,
    load_cut=0.5,
    bit_exact=True,
    with_recovery=True,
    with_campaign=True,
):
    """Synthetic resilience-report records (E19 shape)."""
    records = [
        {
            "name": "delivery_vs_failure_rate",
            "config": {"failure_rate": rate, "policy": "none", "forks": 4},
            "metrics": {"delivery_ratio_mean": ratio, "delivery_ratio_min": ratio},
        }
        for rate, ratio in curve
    ]
    if with_recovery:
        records.append(
            {
                "name": "repair_recovery",
                "config": {"failure_rate": 0.35},
                "metrics": {
                    "repair_link_gain": gain,
                    "reroute_gain": gain,
                    "reroute_load_cut": load_cut,
                },
            }
        )
    if with_campaign:
        records.append(
            {
                "name": "campaign",
                "config": {"seed": 1},
                "metrics": {"determinism_bit_exact": bit_exact},
            }
        )
    return records


def serving_records(
    levels=(1, 4, 16),
    warm=0.94,
    jps=1500.0,
    p50=1.0,
    p99=5.0,
    evictions=20,
    rehydrates=18,
    bit_exact=True,
    rejected=15,
    deterministic=True,
    with_churn=True,
    with_determinism=True,
    with_quota=True,
):
    """Synthetic serving-report records (E21 shape)."""
    records = [
        {
            "name": "serving",
            "config": {"arm": "steady", "clients": c, "models": 3, "jobs": 48},
            "metrics": {
                "jobs_per_sec": jps + 10.0 * c,
                "p50_latency_ms": p50,
                "p99_latency_ms": p99,
                "warm_hit_ratio": warm,
                "evictions": 0,
                "rehydrates": 0,
            },
        }
        for c in levels
    ]
    if with_churn:
        records.append(
            {
                "name": "serving",
                "config": {"arm": "churn", "clients": 4, "models": 3, "jobs": 48},
                "metrics": {
                    "jobs_per_sec": jps / 3.0,
                    "p50_latency_ms": p50 * 4,
                    "p99_latency_ms": p99 * 4,
                    "warm_hit_ratio": 0.5,
                    "evictions": evictions,
                    "rehydrates": rehydrates,
                },
            }
        )
    if with_determinism:
        records.append(
            {
                "name": "serving_determinism",
                "config": {"clients": 4, "jobs": 48},
                "metrics": {
                    "eviction_bit_exact": bit_exact,
                    "evictions": evictions,
                    "rehydrates": rehydrates,
                },
            }
        )
    if with_quota:
        records.append(
            {
                "name": "serving_quota",
                "config": {"tenants": 2, "submissions": 28},
                "metrics": {
                    "admitted": 13,
                    "rejected_total": rejected,
                    "deterministic": deterministic,
                },
            }
        )
    return records


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)
        self._summary = tempfile.NamedTemporaryFile(
            mode="r", suffix=".md", delete=False
        )
        self.addCleanup(lambda: os.unlink(self._summary.name))
        os.environ["GITHUB_STEP_SUMMARY"] = self._summary.name

    def write(self, name, rep):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(rep, f)
        return path

    def run_main(self, argv):
        """Runs bench_compare.main, returning the exit code (0 if it
        returns normally)."""
        try:
            bench_compare.main(argv)
        except SystemExit as e:
            return e.code or 0
        return 0

    def sweep_key(self):
        return ("8x8", "calendar", 4, 100)

    def test_within_bounds_passes(self):
        base = self.write("base.json", report(sweep={self.sweep_key(): 1000.0}))
        new = self.write("new.json", report(sweep={self.sweep_key(): 950.0}))
        self.assertEqual(self.run_main([new, base]), 0)

    def test_sweep_regression_fails(self):
        base = self.write("base.json", report(sweep={self.sweep_key(): 1000.0}))
        new = self.write("new.json", report(sweep={self.sweep_key(): 700.0}))
        self.assertEqual(self.run_main([new, base]), 1)

    def test_micro_regression_fails(self):
        # Lower is better for ns/op: 100 -> 130 is a 30% regression.
        base = self.write("base.json", report(micro={"dense": 100.0}))
        new = self.write("new.json", report(micro={"dense": 130.0}))
        self.assertEqual(self.run_main([new, base, "--kind", "micro"]), 1)

    def test_micro_improvement_passes(self):
        base = self.write("base.json", report(micro={"dense": 100.0}))
        new = self.write("new.json", report(micro={"dense": 60.0}))
        self.assertEqual(self.run_main([new, base, "--kind", "micro"]), 0)

    def test_missing_baseline_file_is_exit_2(self):
        new = self.write("new.json", report(sweep={self.sweep_key(): 1.0}))
        missing = os.path.join(self.dir.name, "BENCH_e99.json")
        self.assertEqual(self.run_main([new, missing]), 2)

    def test_corrupt_json_is_exit_2(self):
        path = os.path.join(self.dir.name, "bad.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        new = self.write("new.json", report(sweep={self.sweep_key(): 1.0}))
        self.assertEqual(self.run_main([new, path]), 2)

    def test_missing_row_is_exit_2_by_default(self):
        # Regression guard: a vanished sweep row used to be silently
        # skipped, letting a gate "pass" while comparing nothing.
        base = self.write(
            "base.json",
            report(sweep={self.sweep_key(): 1000.0, ("8x8", "heap", 1, 100): 900.0}),
        )
        new = self.write("new.json", report(sweep={self.sweep_key(): 1000.0}))
        self.assertEqual(self.run_main([new, base]), 2)

    def test_missing_row_allowed_with_flag(self):
        base = self.write(
            "base.json",
            report(sweep={self.sweep_key(): 1000.0, ("8x8", "heap", 1, 100): 900.0}),
        )
        new = self.write("new.json", report(sweep={self.sweep_key(): 1000.0}))
        self.assertEqual(self.run_main([new, base, "--allow-missing-rows"]), 0)

    def test_no_comparable_rows_is_exit_2(self):
        base = self.write("base.json", report(micro={"dense": 1.0}))
        new = self.write("new.json", report(sweep={self.sweep_key(): 1.0}))
        self.assertEqual(self.run_main([new, base]), 2)

    def test_chain_compares_consecutive_pairs_and_writes_summary(self):
        a = self.write("a.json", report(sweep={self.sweep_key(): 1000.0}))
        b = self.write("b.json", report(sweep={self.sweep_key(): 1100.0}))
        c = self.write("c.json", report(sweep={self.sweep_key(): 1050.0}))
        self.assertEqual(self.run_main(["--chain", a, b, c]), 0)
        with open(self._summary.name, encoding="utf-8") as f:
            text = f.read()
        self.assertIn("Benchmark trajectory", text)
        self.assertIn("| baseline | new |", text)
        # Two pairwise comparisons -> two data rows.
        self.assertEqual(text.count("end_to_end_sweep"), 0)  # kind column says 'sweep'
        self.assertEqual(text.count("| sweep |"), 2)

    def test_chain_regression_fails(self):
        a = self.write("a.json", report(sweep={self.sweep_key(): 1000.0}))
        b = self.write("b.json", report(sweep={self.sweep_key(): 500.0}))
        self.assertEqual(self.run_main(["--chain", a, b]), 1)

    def test_chain_needs_two_reports(self):
        a = self.write("a.json", report(sweep={self.sweep_key(): 1.0}))
        self.assertEqual(self.run_main(["--chain", a]), 2)

    def phase_rows(self, w1=100.0, w4=80.0, share=0.1, ns_neuron=15.0):
        return {
            (1, 30): {
                "wall_ms": w1,
                "barrier_wait_share": 0.0,
                "ns_per_neuron": ns_neuron,
                "ns_per_synaptic_event": 45.0,
            },
            (4, 30): {
                "wall_ms": w4,
                "barrier_wait_share": share,
                "ns_per_neuron": ns_neuron,
                "ns_per_synaptic_event": 45.0,
            },
        }

    def test_perf_kind_regression_fails(self):
        # Lower is better for ns/neuron: 10 -> 14 is a 40% regression.
        base = self.write("base.json", report(phase=self.phase_rows(ns_neuron=10.0)))
        new = self.write("new.json", report(phase=self.phase_rows(ns_neuron=14.0)))
        self.assertEqual(self.run_main([new, base, "--kind", "perf"]), 1)

    def test_perf_kind_improvement_passes(self):
        base = self.write("base.json", report(phase=self.phase_rows(ns_neuron=18.0)))
        new = self.write("new.json", report(phase=self.phase_rows(ns_neuron=12.0)))
        self.assertEqual(self.run_main([new, base, "--kind", "perf"]), 0)

    def test_parallel_speedup_passes_when_threads_pay(self):
        rep = self.write("rep.json", report(phase=self.phase_rows(w1=100.0, w4=80.0)))
        self.assertEqual(self.run_main(["--parallel-speedup", rep]), 0)

    def test_parallel_speedup_fails_when_4t_is_slower(self):
        rep = self.write("rep.json", report(phase=self.phase_rows(w1=100.0, w4=100.0)))
        self.assertEqual(self.run_main(["--parallel-speedup", rep]), 1)

    def test_parallel_speedup_fails_on_barrier_share(self):
        rep = self.write(
            "rep.json", report(phase=self.phase_rows(w1=100.0, w4=80.0, share=0.9))
        )
        self.assertEqual(self.run_main(["--parallel-speedup", rep]), 1)

    def test_parallel_speedup_without_pair_is_exit_2(self):
        rep = self.write("rep.json", report(sweep={self.sweep_key(): 1.0}))
        self.assertEqual(self.run_main(["--parallel-speedup", rep]), 2)

    def test_resilience_gate_passes_on_healthy_report(self):
        rep = self.write("rep.json", report(resil=resil_records()))
        self.assertEqual(self.run_main(["--resilience", rep]), 0)

    def test_resilience_gate_fails_below_delivery_floor(self):
        # At a 0.2 failure rate the floor is 0.92 - 1.3 * 0.2 = 0.66.
        rep = self.write(
            "rep.json", report(resil=resil_records(curve=((0.0, 1.0), (0.2, 0.5))))
        )
        self.assertEqual(self.run_main(["--resilience", rep]), 1)

    def test_resilience_gate_fails_on_degraded_faultfree_bucket(self):
        # The fault-free bucket is the baseline replaying itself: anything
        # below ~1.0 means the campaign harness broke, not the fabric.
        rep = self.write(
            "rep.json", report(resil=resil_records(curve=((0.0, 0.97), (0.2, 0.9))))
        )
        self.assertEqual(self.run_main(["--resilience", rep]), 1)

    def test_resilience_gate_fails_on_nonpositive_repair_gain(self):
        rep = self.write("rep.json", report(resil=resil_records(gain=0.0)))
        self.assertEqual(self.run_main(["--resilience", rep]), 1)

    def test_resilience_gate_fails_on_nonpositive_load_cut(self):
        rep = self.write("rep.json", report(resil=resil_records(load_cut=-0.1)))
        self.assertEqual(self.run_main(["--resilience", rep]), 1)

    def test_resilience_gate_fails_on_inexact_replays(self):
        rep = self.write("rep.json", report(resil=resil_records(bit_exact=False)))
        self.assertEqual(self.run_main(["--resilience", rep]), 1)

    def test_resilience_gate_fails_without_recovery_record(self):
        rep = self.write(
            "rep.json", report(resil=resil_records(with_recovery=False))
        )
        self.assertEqual(self.run_main(["--resilience", rep]), 1)

    def test_resilience_gate_without_curve_is_exit_2(self):
        rep = self.write("rep.json", report(sweep={self.sweep_key(): 1.0}))
        self.assertEqual(self.run_main(["--resilience", rep]), 2)

    def test_resil_kind_compares_buckets_pairwise(self):
        # Higher is better for delivery ratios: 0.9 -> 0.6 regresses.
        base = self.write("base.json", report(resil=resil_records()))
        worse = self.write(
            "worse.json", report(resil=resil_records(curve=((0.0, 1.0), (0.2, 0.6))))
        )
        self.assertEqual(self.run_main([worse, base, "--kind", "resil"]), 1)
        self.assertEqual(self.run_main([base, base, "--kind", "resil"]), 0)

    def test_parallel_speedup_skips_on_one_core_host(self):
        # A 4-thread row measured on a one-core host is the 1-thread run
        # wearing a different label; comparing the two is noise. The
        # check must warn and pass, even when the "4T" wall is slower.
        phase = {
            (1, 30): {"wall_ms": 100.0, "barrier_wait_share": 0.0},
            (4, 30): {"wall_ms": 130.0, "barrier_wait_share": 0.0},
        }
        rep = {
            "experiment": "EX",
            "commit": "deadbeef",
            "records": [
                {
                    "name": "phase_breakdown",
                    "config": {"threads": t, "bio_ms": b, "host_cores": 1},
                    "metrics": dict(m),
                }
                for (t, b), m in phase.items()
            ],
        }
        path = self.write("rep.json", rep)
        self.assertEqual(self.run_main(["--parallel-speedup", path]), 0)

    def test_memory_gate_passes_at_full_scale(self):
        rep = self.write(
            "rep.json", report(scaling=[scaling_row()], memory=memory_arms())
        )
        self.assertEqual(self.run_main(["--memory", rep]), 0)

    def test_memory_gate_fails_below_scale_floors(self):
        rep = self.write(
            "rep.json",
            report(
                scaling=[scaling_row(chips=1024, cores=17408, synapses=2**24)],
                memory=memory_arms(),
            ),
        )
        self.assertEqual(self.run_main(["--memory", rep]), 1)

    def test_memory_gate_fails_when_lazy_not_smaller(self):
        rep = self.write(
            "rep.json",
            report(
                scaling=[scaling_row()],
                memory=memory_arms(lazy_bps=5.0, eager_bps=4.5),
            ),
        )
        self.assertEqual(self.run_main(["--memory", rep]), 1)

    def test_memory_gate_fails_without_paired_arms(self):
        rep = self.write("rep.json", report(scaling=[scaling_row()]))
        self.assertEqual(self.run_main(["--memory", rep]), 1)

    def test_memory_gate_without_scaling_rows_is_exit_2(self):
        rep = self.write("rep.json", report(sweep={self.sweep_key(): 1.0}))
        self.assertEqual(self.run_main(["--memory", rep]), 2)

    def test_memory_kind_compares_footprint_pairwise(self):
        # Lower is better for bytes/synapse: 1.3 -> 2.0 regresses >20%.
        base = self.write("base.json", report(memory=memory_arms(lazy_bps=1.3)))
        worse = self.write("worse.json", report(memory=memory_arms(lazy_bps=2.0)))
        self.assertEqual(self.run_main([worse, base, "--kind", "memory"]), 1)
        self.assertEqual(self.run_main([base, base, "--kind", "memory"]), 0)

    def test_work_stealing_gate_passes_when_stealing_pays(self):
        rep = self.write("rep.json", report(stealing=stealing_rows()))
        self.assertEqual(self.run_main(["--work-stealing", rep]), 0)

    def test_work_stealing_gate_fails_when_steal_is_slower(self):
        rep = self.write(
            "rep.json",
            report(stealing=stealing_rows(static_wall=200.0, steal_wall=260.0)),
        )
        self.assertEqual(self.run_main(["--work-stealing", rep]), 1)

    def test_work_stealing_gate_fails_when_stealing_raises_barrier(self):
        rep = self.write(
            "rep.json",
            report(stealing=stealing_rows(static_share=0.1, steal_share=0.5)),
        )
        self.assertEqual(self.run_main(["--work-stealing", rep]), 1)

    def test_work_stealing_gate_skips_on_collapsed_host(self):
        # One host core: both arms ran the identical serial schedule, so
        # a slower steal arm is chunking overhead, not a stealing
        # regression — the gate must skip, not fail.
        rep = self.write(
            "rep.json",
            report(
                stealing=stealing_rows(
                    static_wall=200.0, steal_wall=260.0, host_cores=1
                )
            ),
        )
        self.assertEqual(self.run_main(["--work-stealing", rep]), 0)

    def test_work_stealing_gate_without_pairs_is_exit_2(self):
        rep = self.write("rep.json", report(sweep={self.sweep_key(): 1.0}))
        self.assertEqual(self.run_main(["--work-stealing", rep]), 2)

    def test_serving_gate_passes_on_healthy_report(self):
        rep = self.write("rep.json", report(serving=serving_records()))
        self.assertEqual(self.run_main(["--serving", rep]), 0)

    def test_serving_gate_fails_below_warm_hit_floor(self):
        rep = self.write("rep.json", report(serving=serving_records(warm=0.5)))
        self.assertEqual(self.run_main(["--serving", rep]), 1)

    def test_serving_gate_fails_with_fewer_than_three_levels(self):
        rep = self.write(
            "rep.json", report(serving=serving_records(levels=(1, 4)))
        )
        self.assertEqual(self.run_main(["--serving", rep]), 1)

    def test_serving_gate_fails_on_inverted_latency_percentiles(self):
        # p50 above p99 means the percentile math (or the recorder) broke.
        rep = self.write(
            "rep.json", report(serving=serving_records(p50=9.0, p99=2.0))
        )
        self.assertEqual(self.run_main(["--serving", rep]), 1)

    def test_serving_gate_fails_when_churn_never_evicted(self):
        rep = self.write(
            "rep.json",
            report(serving=serving_records(evictions=0, rehydrates=0)),
        )
        self.assertEqual(self.run_main(["--serving", rep]), 1)

    def test_serving_gate_fails_without_churn_arm(self):
        rep = self.write(
            "rep.json", report(serving=serving_records(with_churn=False))
        )
        self.assertEqual(self.run_main(["--serving", rep]), 1)

    def test_serving_gate_fails_on_inexact_eviction_replay(self):
        rep = self.write(
            "rep.json", report(serving=serving_records(bit_exact=False))
        )
        self.assertEqual(self.run_main(["--serving", rep]), 1)

    def test_serving_gate_fails_when_quota_burst_rejects_nothing(self):
        rep = self.write("rep.json", report(serving=serving_records(rejected=0)))
        self.assertEqual(self.run_main(["--serving", rep]), 1)

    def test_serving_gate_fails_on_nondeterministic_quota_trace(self):
        rep = self.write(
            "rep.json", report(serving=serving_records(deterministic=False))
        )
        self.assertEqual(self.run_main(["--serving", rep]), 1)

    def test_serving_gate_fails_without_quota_record(self):
        rep = self.write(
            "rep.json", report(serving=serving_records(with_quota=False))
        )
        self.assertEqual(self.run_main(["--serving", rep]), 1)

    def test_serving_gate_without_serving_rows_is_exit_2(self):
        rep = self.write("rep.json", report(sweep={self.sweep_key(): 1.0}))
        self.assertEqual(self.run_main(["--serving", rep]), 2)

    def test_serving_kind_compares_throughput_pairwise(self):
        # Higher is better for jobs/sec: 1500 -> 1000 regresses >20%.
        base = self.write("base.json", report(serving=serving_records()))
        worse = self.write(
            "worse.json", report(serving=serving_records(jps=1000.0))
        )
        self.assertEqual(self.run_main([worse, base, "--kind", "serving"]), 1)
        self.assertEqual(self.run_main([base, base, "--kind", "serving"]), 0)

    def test_committed_e21_serving_gate_holds(self):
        # The committed serving artifact must clear its own acceptance
        # gate, exactly as CI runs it.
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        e21 = os.path.join(root, "BENCH_e21.json")
        self.assertTrue(os.path.exists(e21), f"{e21} must be committed")
        self.assertEqual(self.run_main(["--serving", e21]), 0)

    def test_committed_e19_resilience_gate_holds(self):
        # The committed E19 artifact must clear its own acceptance gate,
        # exactly as CI runs it.
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        e19 = os.path.join(root, "BENCH_e19.json")
        self.assertTrue(os.path.exists(e19), f"{e19} must be committed")
        self.assertEqual(self.run_main(["--resilience", e19]), 0)

    def test_committed_artifacts_chain_cleanly(self):
        # The real committed BENCH_*.json files must stay chainable (the
        # CI trajectory step depends on it). Micro rows only exist in
        # E14, so allow missing rows across the chain. E17 carries only
        # phase_breakdown rows, so it is gated pairwise against E18
        # below instead of sitting in the sweep chain.
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        chain = [
            os.path.join(root, f"BENCH_e{n}.json")
            for n in (14, 15, 16, 18, 20, 21)
        ]
        for path in chain:
            self.assertTrue(os.path.exists(path), f"{path} must be committed")
        code = self.run_main(
            ["--chain", *chain, "--allow-missing-rows", "--max-regress", "0.35"]
        )
        self.assertEqual(code, 0)

    def test_committed_e20_gates_hold(self):
        # The committed scaling-study artifact must clear its own
        # acceptance gates, exactly as CI runs them: full-machine scale
        # and lazy-vs-eager footprint, plus the work-stealing arms
        # (which may legitimately skip on a collapsed host — the gate
        # encodes that honesty, so exit 0 either way is the contract).
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        e20 = os.path.join(root, "BENCH_e20.json")
        self.assertTrue(os.path.exists(e20), f"{e20} must be committed")
        self.assertEqual(self.run_main(["--memory", e20]), 0)
        self.assertEqual(self.run_main(["--work-stealing", e20]), 0)

    def test_committed_e18_gates_hold(self):
        # The collected-win acceptance gates, run on the committed
        # artifacts exactly as CI does: per-loop costs vs E17 and the
        # threads-must-pay check on E18 itself.
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        e17 = os.path.join(root, "BENCH_e17.json")
        e18 = os.path.join(root, "BENCH_e18.json")
        self.assertEqual(
            self.run_main([e18, e17, "--kind", "perf", "--max-regress", "0.35"]), 0
        )
        self.assertEqual(self.run_main(["--parallel-speedup", e18]), 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
