#!/usr/bin/env python3
"""Diff BENCH_*.json reports and fail on regression.

Two modes:

Pairwise (the CI gate):
    python3 scripts/bench_compare.py NEW.json BASELINE.json \
        [--max-regress 0.20] [--kind sweep|micro|all] [--allow-missing-rows]

Chain (the trajectory table):
    python3 scripts/bench_compare.py --chain A.json B.json C.json ... \
        [--max-regress 0.20] [--allow-missing-rows]

Row kinds compared:

* ``end_to_end_sweep`` records, matched by (mesh, queue, threads,
  bio_ms), on the ``spikes_per_sec`` metric (higher is better) — noisy
  on shared runners (wall-clock), so usually gated generously or
  advisory.
* ``queue_microbench`` records, matched by case name, on the
  ``calendar_ns_per_op`` metric (lower is better) — a tight kernel
  loop, stable enough to gate on.
* ``phase_breakdown`` records, matched by (threads, bio_ms, metric),
  on the ``ns_per_neuron`` and ``ns_per_synaptic_event`` metrics
  (lower is better) — per-loop costs normalized by simulated work, so
  they gate tighter than wall-clock rows.

Single-report modes check one report in isolation:

    python3 scripts/bench_compare.py --parallel-speedup REPORT.json

fails unless the report's ``phase_breakdown`` rows show the 4-thread
wall-clock strictly beating the 1-thread wall-clock with a 4-thread
barrier-wait share of at most 0.5 — threads must pay, not just cost.

    python3 scripts/bench_compare.py --resilience REPORT.json

gates a resilience-campaign report (E19): every fault-sweep bucket
meets a per-failure-rate delivery floor, the paired repair arms show
``repair_link`` recovering delivery and ``reroute`` shedding
emergency/drop load, and the campaign's thread-count replays were
bit-exact. ``resil`` rows (bucket delivery ratios keyed by
(failure_rate, policy), higher is better) also join the pairwise and
chain comparisons.

Chain mode compares each consecutive pair (old -> new) and appends a
markdown trajectory table to ``$GITHUB_STEP_SUMMARY`` when that
variable is set (always also printed to stdout).

Exit codes:

    0  every matched row is within the allowed regression
    1  at least one matched row regressed more than --max-regress
    2  usage error, unreadable/missing input file, no comparable rows,
       or (without --allow-missing-rows) a row present in only one
       report

Only Python's standard library is used (the build environment is
offline). Unit tests: ``python3 scripts/test_bench_compare.py``.
"""

import argparse
import json
import os
import sys


def fail_usage(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    if not os.path.exists(path):
        fail_usage(
            f"benchmark report {path} does not exist — a missing baseline must "
            "fail the gate, not skip it. Committed baselines are regenerated "
            "with `cargo run --release -p spinn-bench --bin run_experiments -- "
            "E14` (or E15/E16)"
        )
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail_usage(f"cannot read {path}: {err}")


def sweep_rows(report):
    """(mesh, queue, threads, bio_ms) -> spikes_per_sec (higher is better)."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") != "end_to_end_sweep":
            continue
        cfg = record.get("config", {})
        metrics = record.get("metrics", {})
        key = (
            cfg.get("mesh"),
            cfg.get("queue"),
            cfg.get("threads"),
            cfg.get("bio_ms"),
        )
        sps = metrics.get("spikes_per_sec")
        if sps is not None:
            rows[key] = float(sps)
    return rows


def micro_rows(report):
    """case -> calendar_ns_per_op (lower is better)."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") != "queue_microbench":
            continue
        case = record.get("config", {}).get("case")
        ns = record.get("metrics", {}).get("calendar_ns_per_op")
        if case is not None and ns is not None:
            rows[case] = float(ns)
    return rows


def perf_rows(report):
    """(threads, bio_ms, metric) -> ns (lower is better) for the
    per-loop phase_breakdown costs."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") != "phase_breakdown":
            continue
        cfg = record.get("config", {})
        metrics = record.get("metrics", {})
        for metric in ("ns_per_neuron", "ns_per_synaptic_event"):
            value = metrics.get(metric)
            if value is not None:
                rows[(cfg.get("threads"), cfg.get("bio_ms"), metric)] = float(value)
    return rows


def resil_rows(report):
    """(failure_rate, policy) -> delivery_ratio_mean (higher is better)
    for the Monte Carlo fault-sweep buckets (curve and repair arms)."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") not in ("delivery_vs_failure_rate", "live_repair"):
            continue
        cfg = record.get("config", {})
        ratio = record.get("metrics", {}).get("delivery_ratio_mean")
        if ratio is not None:
            rows[(cfg.get("failure_rate"), cfg.get("policy"))] = float(ratio)
    return rows


# (label, extractor, True when higher is better)
KINDS = {
    "sweep": ("end_to_end_sweep spikes/sec", sweep_rows, True),
    "micro": ("queue_microbench calendar ns/op", micro_rows, False),
    "perf": ("phase_breakdown ns per unit of work", perf_rows, False),
    "resil": ("fault-sweep delivery ratio", resil_rows, True),
}


def check_parallel_speedup(name):
    """Single-report gate: 4-thread wall_ms must be strictly below
    1-thread wall_ms, and the 4-thread barrier-wait share at most 0.5,
    for every bio_ms the report measured both thread counts at.
    Returns the number of failed checks (exits 2 if the report has no
    comparable phase_breakdown pair)."""
    report = load(name)
    walls = {}
    barrier = {}
    for record in report.get("records", []):
        if record.get("name") != "phase_breakdown":
            continue
        cfg = record.get("config", {})
        metrics = record.get("metrics", {})
        key = (cfg.get("threads"), cfg.get("bio_ms"))
        if metrics.get("wall_ms") is not None:
            walls[key] = float(metrics["wall_ms"])
        if metrics.get("barrier_wait_share") is not None:
            barrier[key] = float(metrics["barrier_wait_share"])
    pairs = sorted(
        bio for (threads, bio) in walls if threads == 1 and (4, bio) in walls
    )
    if not pairs:
        fail_usage(
            f"{name} has no phase_breakdown rows at both 1 and 4 threads — "
            "nothing to check parallel speedup on"
        )
    failures = 0
    print(f"parallel speedup check on {name}:")
    for bio in pairs:
        w1, w4 = walls[(1, bio)], walls[(4, bio)]
        share = barrier.get((4, bio), 0.0)
        ok_wall = w4 < w1
        ok_share = share <= 0.5
        failures += (not ok_wall) + (not ok_share)
        print(
            f"  bio_ms={bio}: wall 1T {w1:.1f} ms vs 4T {w4:.1f} ms "
            f"({w4 / w1 - 1.0:+.1%}) {'ok' if ok_wall else '<< 4T must beat 1T'}; "
            f"4T barrier share {share:.3f} "
            f"{'ok' if ok_share else '<< must be <= 0.5'}"
        )
    return failures


def resilience_floor(rate):
    """Minimum acceptable mean delivery ratio at a given cable-failure
    rate. Linear in the failure rate with generous slack below the
    measured curve (full mode measures ~1.0, 0.997, 0.974, 0.881,
    0.694, 0.497 at rates 0, 0.05, 0.1, 0.2, 0.35, 0.5): emergency
    routing must keep absorbing sparse death, and heavy death must not
    collapse below what detours + monitor reissue recover."""
    if rate == 0.0:
        return 0.999
    return max(0.15, 0.92 - 1.3 * rate)


def check_resilience(name):
    """Single-report gate on a resilience-campaign report (E19):

    * every ``delivery_vs_failure_rate`` bucket meets the per-rate
      delivery floor (the fault-free bucket must score ~1.0);
    * the paired ``repair_recovery`` record shows live repair actually
      recovering delivery (``repair_link_gain`` positive) and table
      re-routing taking standing emergency/drop load off the fabric
      (``reroute_load_cut`` positive);
    * the campaign's replays were bit-exact across thread counts.

    The campaign is seeded and deterministic, so these are exact
    reproducible numbers, not statistical tests. Returns the number of
    failed checks (exits 2 if the report has no resilience rows)."""
    report = load(name)
    curve = []
    recovery = None
    campaign = None
    for record in report.get("records", []):
        if record.get("name") == "delivery_vs_failure_rate":
            cfg = record.get("config", {})
            m = record.get("metrics", {})
            if m.get("delivery_ratio_mean") is not None:
                curve.append(
                    (float(cfg.get("failure_rate", 0.0)), float(m["delivery_ratio_mean"]))
                )
        elif record.get("name") == "repair_recovery":
            recovery = record.get("metrics", {})
        elif record.get("name") == "campaign":
            campaign = record.get("metrics", {})
    if not curve:
        fail_usage(
            f"{name} has no delivery_vs_failure_rate rows — not a resilience "
            "report (regenerate with `cargo run --release -p spinn-bench "
            "--bin run_experiments -- E19`)"
        )
    failures = 0
    print(f"resilience check on {name}:")
    for rate, ratio in sorted(curve):
        floor = resilience_floor(rate)
        ok = ratio >= floor
        failures += not ok
        print(
            f"  rate {rate:.3f}: delivery {ratio:.3f} "
            f"(floor {floor:.3f}) {'ok' if ok else '<< below floor'}"
        )
    if recovery is None:
        print("  no repair_recovery record << required", file=sys.stderr)
        failures += 1
    else:
        gain = float(recovery.get("repair_link_gain", float("nan")))
        cut = float(recovery.get("reroute_load_cut", float("nan")))
        ok_gain = gain > 0.0
        ok_cut = cut > 0.0
        failures += (not ok_gain) + (not ok_cut)
        print(
            f"  repair_link gain {gain:+.3f} "
            f"{'ok' if ok_gain else '<< repair must recover delivery'}"
        )
        print(
            f"  reroute load cut {cut:+.1%} "
            f"{'ok' if ok_cut else '<< reroute must shed emergency/drop load'}"
        )
    if campaign is None:
        print("  no campaign record << required", file=sys.stderr)
        failures += 1
    else:
        exact = campaign.get("determinism_bit_exact")
        ok = exact is True
        failures += not ok
        print(
            f"  replays bit-exact: {exact} "
            f"{'ok' if ok else '<< thread-count replays must be bit-exact'}"
        )
    return failures


def compare_kind(kind, new_report, base_report, new_name, base_name, args):
    """Compares one row kind; returns (rows, failures) where rows are
    (key, base, new, delta, regressed) tuples. Exits 2 on missing rows
    unless --allow-missing-rows."""
    label, extract, higher_better = KINDS[kind]
    new_rows = extract(new_report)
    base_rows = extract(base_report)
    shared = sorted(set(new_rows) & set(base_rows), key=str)
    missing = sorted((set(new_rows) | set(base_rows)) - set(shared), key=str)
    if missing and not args.allow_missing_rows:
        for key in missing:
            where = new_name if key in new_rows else base_name
            print(
                f"error: {label} row {key} exists only in {where} — a vanished "
                "row must fail the gate, not be skipped (pass "
                "--allow-missing-rows to compare different sweep grids)",
                file=sys.stderr,
            )
        sys.exit(2)
    rows = []
    failures = 0
    for key in shared:
        base, new = base_rows[key], new_rows[key]
        if higher_better:
            delta = (new - base) / base if base > 0 else 0.0
            regressed = base > 0 and new < base * (1.0 - args.max_regress)
        else:
            delta = (base - new) / base if base > 0 else 0.0  # improvement > 0
            regressed = base > 0 and new > base * (1.0 + args.max_regress)
        failures += regressed
        rows.append((key, base, new, delta, regressed))
    return rows, failures, missing


def print_rows(label, rows):
    print(f"  {label}:")
    print(f"    {'row':<40} {'baseline':>12} {'new':>12} {'delta':>8}")
    for key, base, new, delta, regressed in rows:
        flag = "  << REGRESSION" if regressed else ""
        print(
            f"    {str(key):<40} {base:>12.1f} {new:>12.1f} {delta:>+7.1%}{flag}"
        )


def compare_pair(new_name, base_name, kinds, args):
    """Full pairwise comparison; returns (total failures, markdown rows)."""
    new_report = load(new_name)
    base_report = load(base_name)
    print(
        f"comparing {new_name} (commit {new_report.get('commit', '?')[:12]}) "
        f"against {base_name} (commit {base_report.get('commit', '?')[:12]}); "
        f"allowed regression {args.max_regress:.0%}"
    )
    total_failures = 0
    any_rows = False
    md = []
    for kind in kinds:
        rows, failures, missing = compare_kind(
            kind, new_report, base_report, new_name, base_name, args
        )
        if not rows:
            continue
        any_rows = True
        total_failures += failures
        print_rows(KINDS[kind][0], rows)
        if missing:
            print(f"    ({len(missing)} row(s) present in only one report; skipped)")
        for key, base, new, delta, regressed in rows:
            md.append(
                (base_name, new_name, kind, str(key), base, new, delta, regressed)
            )
    if not any_rows:
        fail_usage(
            f"{new_name} and {base_name} share no comparable rows "
            f"(kinds tried: {', '.join(kinds)})"
        )
    return total_failures, md


def write_summary(md_rows):
    """Appends the trajectory as a markdown table to $GITHUB_STEP_SUMMARY
    (if set) and always prints it to stdout."""
    lines = [
        "### Benchmark trajectory",
        "",
        "| baseline | new | kind | row | baseline value | new value | delta |",
        "|---|---|---|---|---:|---:|---:|",
    ]
    for base_name, new_name, kind, key, base, new, delta, regressed in md_rows:
        mark = " ⚠️" if regressed else ""
        lines.append(
            f"| {base_name} | {new_name} | {kind} | `{key}` "
            f"| {base:.1f} | {new:.1f} | {delta:+.1%}{mark} |"
        )
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as f:
            f.write(text)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("reports", nargs="+", help="NEW BASELINE, or --chain A B C ...")
    ap.add_argument(
        "--chain",
        action="store_true",
        help="treat the reports as a chronological chain (oldest first) and "
        "compare each consecutive pair, emitting a markdown trajectory table",
    )
    ap.add_argument(
        "--max-regress",
        type=float,
        default=0.20,
        help="maximum allowed fractional regression (default 0.20)",
    )
    ap.add_argument(
        "--kind",
        choices=["sweep", "micro", "perf", "resil", "all"],
        default="all",
        help="row kinds to compare (default: all kinds present in both reports)",
    )
    ap.add_argument(
        "--parallel-speedup",
        action="store_true",
        help="check a single report's phase_breakdown rows: 4-thread wall_ms "
        "strictly below 1-thread, 4-thread barrier share at most 0.5",
    )
    ap.add_argument(
        "--resilience",
        action="store_true",
        help="check a single resilience-campaign report (E19): per-rate "
        "delivery floors, positive paired repair recovery, bit-exact replays",
    )
    ap.add_argument(
        "--allow-missing-rows",
        action="store_true",
        help="skip rows present in only one report instead of failing "
        "(for comparing quick-mode against full-mode sweep grids)",
    )
    args = ap.parse_args(argv)
    kinds = ["sweep", "micro", "perf", "resil"] if args.kind == "all" else [args.kind]

    if args.parallel_speedup and args.resilience:
        fail_usage("--parallel-speedup and --resilience are separate checks")
    if args.parallel_speedup:
        if args.chain or len(args.reports) != 1:
            fail_usage("--parallel-speedup takes exactly one report")
        failures = check_parallel_speedup(args.reports[0])
        if failures:
            print(f"FAIL: {failures} parallel-speedup check(s) failed", file=sys.stderr)
            sys.exit(1)
        print("OK: threads pay — 4-thread wall beats 1-thread within barrier bounds")
        return
    if args.resilience:
        if args.chain or len(args.reports) != 1:
            fail_usage("--resilience takes exactly one report")
        failures = check_resilience(args.reports[0])
        if failures:
            print(f"FAIL: {failures} resilience check(s) failed", file=sys.stderr)
            sys.exit(1)
        print(
            "OK: the campaign degrades gracefully, live repair recovers "
            "delivery, replays are bit-exact"
        )
        return

    failures = 0
    md_rows = []
    if args.chain:
        if len(args.reports) < 2:
            fail_usage("--chain needs at least two reports (oldest first)")
        for old, new in zip(args.reports, args.reports[1:]):
            f, md = compare_pair(new, old, kinds, args)
            failures += f
            md_rows.extend(md)
        write_summary(md_rows)
    else:
        if len(args.reports) != 2:
            fail_usage("pairwise mode takes exactly NEW and BASELINE")
        failures, md_rows = compare_pair(args.reports[0], args.reports[1], kinds, args)

    if failures:
        print(
            f"FAIL: {failures} row(s) regressed more than {args.max_regress:.0%}",
            file=sys.stderr,
        )
        sys.exit(1)
    print("OK: all compared rows within bounds")


if __name__ == "__main__":
    main()
