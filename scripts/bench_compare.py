#!/usr/bin/env python3
"""Diff BENCH_*.json reports and fail on regression.

Two modes:

Pairwise (the CI gate):
    python3 scripts/bench_compare.py NEW.json BASELINE.json \
        [--max-regress 0.20] [--kind sweep|micro|all] [--allow-missing-rows]

Chain (the trajectory table):
    python3 scripts/bench_compare.py --chain A.json B.json C.json ... \
        [--max-regress 0.20] [--allow-missing-rows]

Row kinds compared:

* ``end_to_end_sweep`` records, matched by (mesh, queue, threads,
  bio_ms), on the ``spikes_per_sec`` metric (higher is better) — noisy
  on shared runners (wall-clock), so usually gated generously or
  advisory.
* ``queue_microbench`` records, matched by case name, on the
  ``calendar_ns_per_op`` metric (lower is better) — a tight kernel
  loop, stable enough to gate on.
* ``phase_breakdown`` records, matched by (threads, bio_ms, metric),
  on the ``ns_per_neuron`` and ``ns_per_synaptic_event`` metrics
  (lower is better) — per-loop costs normalized by simulated work, so
  they gate tighter than wall-clock rows.

Single-report modes check one report in isolation:

    python3 scripts/bench_compare.py --parallel-speedup REPORT.json

fails unless the report's ``phase_breakdown`` rows show the 4-thread
wall-clock strictly beating the 1-thread wall-clock with a 4-thread
barrier-wait share of at most 0.5 — threads must pay, not just cost.

    python3 scripts/bench_compare.py --resilience REPORT.json

gates a resilience-campaign report (E19): every fault-sweep bucket
meets a per-failure-rate delivery floor, the paired repair arms show
``repair_link`` recovering delivery and ``reroute`` shedding
emergency/drop load, and the campaign's thread-count replays were
bit-exact. ``resil`` rows (bucket delivery ratios keyed by
(failure_rate, policy), higher is better) also join the pairwise and
chain comparisons.

    python3 scripts/bench_compare.py --memory REPORT.json

gates a scaling-study report (E20): the largest ``scaling`` row must
show the full machine (>= 65536 chips, >= 10^6 cores, >= 10^8
synapses) built and run with ``bytes_per_synapse`` reported, and the
paired lazy/eager ``memory`` arms must show the compressed lazy build
resident-smaller. ``memory`` rows (bytes/synapse keyed by (mesh, arm),
lower is better) also join the pairwise and chain comparisons.

    python3 scripts/bench_compare.py --work-stealing REPORT.json

gates the E20 skewed-load arms: chunked stealing must beat the static
shard split on wall-clock without raising barrier share — checked only
at 4+ effective workers; on hosts whose parallelism collapses the
comparison (``min(effective_threads, host_cores) < 4``) it warns and
skips rather than comparing two identical serial runs. The same
honesty rule applies to ``--parallel-speedup`` when the report was
measured on a one-core host.

    python3 scripts/bench_compare.py --serving REPORT.json

gates a serving report (E21): steady-arm ``serving`` rows at >= 3
client-concurrency levels with positive jobs/sec and sane p50/p99
latency, a warm-hit ratio above 0.8 on every steady row, a churn arm
that actually evicted and rehydrated sessions with a bit-exact spike
verdict, and a deterministic quota-rejection replay. ``serving`` rows
(jobs/sec keyed by (arm, clients), higher is better) also join the
pairwise and chain comparisons.

Chain mode compares each consecutive pair (old -> new) and appends a
markdown trajectory table to ``$GITHUB_STEP_SUMMARY`` when that
variable is set (always also printed to stdout).

Exit codes:

    0  every matched row is within the allowed regression
    1  at least one matched row regressed more than --max-regress
    2  usage error, unreadable/missing input file, no comparable rows,
       or (without --allow-missing-rows) a row present in only one
       report

Only Python's standard library is used (the build environment is
offline). Unit tests: ``python3 scripts/test_bench_compare.py``.
"""

import argparse
import json
import os
import sys


def fail_usage(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    if not os.path.exists(path):
        fail_usage(
            f"benchmark report {path} does not exist — a missing baseline must "
            "fail the gate, not skip it. Committed baselines are regenerated "
            "with `cargo run --release -p spinn-bench --bin run_experiments -- "
            "E14` (or E15/E16)"
        )
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail_usage(f"cannot read {path}: {err}")


def sweep_rows(report):
    """(mesh, queue, threads, bio_ms) -> spikes_per_sec (higher is better)."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") != "end_to_end_sweep":
            continue
        cfg = record.get("config", {})
        metrics = record.get("metrics", {})
        key = (
            cfg.get("mesh"),
            cfg.get("queue"),
            cfg.get("threads"),
            cfg.get("bio_ms"),
        )
        sps = metrics.get("spikes_per_sec")
        if sps is not None:
            rows[key] = float(sps)
    return rows


def micro_rows(report):
    """case -> calendar_ns_per_op (lower is better)."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") != "queue_microbench":
            continue
        case = record.get("config", {}).get("case")
        ns = record.get("metrics", {}).get("calendar_ns_per_op")
        if case is not None and ns is not None:
            rows[case] = float(ns)
    return rows


def perf_rows(report):
    """(threads, bio_ms, metric) -> ns (lower is better) for the
    per-loop phase_breakdown costs."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") != "phase_breakdown":
            continue
        cfg = record.get("config", {})
        metrics = record.get("metrics", {})
        for metric in ("ns_per_neuron", "ns_per_synaptic_event"):
            value = metrics.get(metric)
            if value is not None:
                rows[(cfg.get("threads"), cfg.get("bio_ms"), metric)] = float(value)
    return rows


def memory_rows(report):
    """(mesh, arm) -> bytes_per_synapse (lower is better) for the E20
    loader-footprint rows (``memory`` records; the scaling rows carry
    their own bytes_per_synapse but are keyed to wall-clock cells, so
    only the dedicated footprint arms join the regression gate)."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") != "memory":
            continue
        cfg = record.get("config", {})
        bps = record.get("metrics", {}).get("bytes_per_synapse")
        if bps is not None:
            rows[(cfg.get("mesh"), cfg.get("arm"))] = float(bps)
    return rows


def resil_rows(report):
    """(failure_rate, policy) -> delivery_ratio_mean (higher is better)
    for the Monte Carlo fault-sweep buckets (curve and repair arms)."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") not in ("delivery_vs_failure_rate", "live_repair"):
            continue
        cfg = record.get("config", {})
        ratio = record.get("metrics", {}).get("delivery_ratio_mean")
        if ratio is not None:
            rows[(cfg.get("failure_rate"), cfg.get("policy"))] = float(ratio)
    return rows


def serving_rows(report):
    """(arm, clients) -> jobs_per_sec (higher is better) for the E21
    load-generator rows (``serving`` records)."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") != "serving":
            continue
        cfg = record.get("config", {})
        jps = record.get("metrics", {}).get("jobs_per_sec")
        if jps is not None:
            rows[(cfg.get("arm"), cfg.get("clients"))] = float(jps)
    return rows


# (label, extractor, True when higher is better)
KINDS = {
    "sweep": ("end_to_end_sweep spikes/sec", sweep_rows, True),
    "micro": ("queue_microbench calendar ns/op", micro_rows, False),
    "perf": ("phase_breakdown ns per unit of work", perf_rows, False),
    "resil": ("fault-sweep delivery ratio", resil_rows, True),
    "memory": ("loader footprint bytes/synapse", memory_rows, False),
    "serving": ("serving jobs/sec", serving_rows, True),
}


def check_parallel_speedup(name):
    """Single-report gate: 4-thread wall_ms must be strictly below
    1-thread wall_ms, and the 4-thread barrier-wait share at most 0.5,
    for every bio_ms the report measured both thread counts at.
    Returns the number of failed checks (exits 2 if the report has no
    comparable phase_breakdown pair). On a report measured on a
    one-core host the 4-thread run collapsed to serial execution, so
    there is no speedup to verify — the check warns and skips (0
    failures) instead of comparing two identical serial runs."""
    report = load(name)
    walls = {}
    barrier = {}
    host_cores = []
    for record in report.get("records", []):
        if record.get("name") != "phase_breakdown":
            continue
        cfg = record.get("config", {})
        metrics = record.get("metrics", {})
        key = (cfg.get("threads"), cfg.get("bio_ms"))
        if cfg.get("host_cores") is not None:
            host_cores.append(int(cfg["host_cores"]))
        if metrics.get("wall_ms") is not None:
            walls[key] = float(metrics["wall_ms"])
        if metrics.get("barrier_wait_share") is not None:
            barrier[key] = float(metrics["barrier_wait_share"])
    if host_cores and max(host_cores) <= 1:
        print(
            f"WARN: {name} was measured on a one-core host — its 4-thread "
            "rows collapsed to serial runs, so there is no parallel speedup "
            "to verify; skipping (rows record host_cores/effective_threads "
            "so the collapse is visible, not hidden)"
        )
        return 0
    pairs = sorted(
        bio for (threads, bio) in walls if threads == 1 and (4, bio) in walls
    )
    if not pairs:
        fail_usage(
            f"{name} has no phase_breakdown rows at both 1 and 4 threads — "
            "nothing to check parallel speedup on"
        )
    failures = 0
    print(f"parallel speedup check on {name}:")
    for bio in pairs:
        w1, w4 = walls[(1, bio)], walls[(4, bio)]
        share = barrier.get((4, bio), 0.0)
        ok_wall = w4 < w1
        ok_share = share <= 0.5
        failures += (not ok_wall) + (not ok_share)
        print(
            f"  bio_ms={bio}: wall 1T {w1:.1f} ms vs 4T {w4:.1f} ms "
            f"({w4 / w1 - 1.0:+.1%}) {'ok' if ok_wall else '<< 4T must beat 1T'}; "
            f"4T barrier share {share:.3f} "
            f"{'ok' if ok_share else '<< must be <= 0.5'}"
        )
    return failures


def check_memory(name):
    """Single-report gate on a scaling-study report (E20):

    * at least one ``scaling`` row demonstrates the full-machine build
      and run: >= 65536 chips, >= 10^6 machine cores, >= 10^8 synapses,
      with a finite ``bytes_per_synapse`` actually reported;
    * the paired ``memory`` loader arms show the lazy (compressed
      recipe) build resident-smaller than the eager build on the same
      mesh.

    Returns the number of failed checks (exits 2 if the report has no
    scaling rows)."""
    report = load(name)
    scaling = []
    mem = {}
    for record in report.get("records", []):
        if record.get("name") == "scaling":
            scaling.append(record)
        elif record.get("name") == "memory":
            cfg = record.get("config", {})
            mem[(cfg.get("mesh"), cfg.get("arm"))] = record.get("metrics", {})
    if not scaling:
        fail_usage(
            f"{name} has no scaling rows — not a scaling-study report "
            "(regenerate with `SPINN_FULL=1 cargo run --release -p "
            "spinn-bench --bin run_experiments -- E20`)"
        )
    failures = 0
    print(f"memory/scale check on {name}:")
    best = max(
        scaling,
        key=lambda r: (
            float(r.get("config", {}).get("chips", 0)),
            float(r.get("metrics", {}).get("synapses", 0)),
        ),
    )
    cfg, m = best.get("config", {}), best.get("metrics", {})
    chips = float(cfg.get("chips", 0))
    cores = float(cfg.get("machine_cores", 0))
    synapses = float(m.get("synapses", 0))
    bps = m.get("bytes_per_synapse")
    checks = [
        (chips >= 65536, f"chips {chips:.0f} (need >= 65536)"),
        (cores >= 1_000_000, f"machine cores {cores:.0f} (need >= 1e6)"),
        (synapses >= 100_000_000, f"synapses {synapses:.0f} (need >= 1e8)"),
        (
            bps is not None and float(bps) > 0.0,
            f"bytes/synapse {bps} (must be reported and positive)",
        ),
    ]
    for ok, desc in checks:
        failures += not ok
        print(f"  {desc} {'ok' if ok else '<< FAIL'}")
    lazy_eager = [
        (mesh, mem[(mesh, "lazy")], mem[(mesh, "eager")])
        for (mesh, arm) in mem
        if arm == "lazy" and (mesh, "eager") in mem
    ]
    if not lazy_eager:
        print("  no paired lazy/eager memory arms << FAIL", file=sys.stderr)
        failures += 1
    for mesh, lazy, eager in sorted(lazy_eager):
        lz = float(lazy.get("bytes_per_synapse", float("inf")))
        eg = float(eager.get("bytes_per_synapse", 0.0))
        ok = lz < eg
        failures += not ok
        print(
            f"  {mesh}: lazy {lz:.2f} B/synapse vs eager {eg:.2f} "
            f"{'ok' if ok else '<< lazy must be resident-smaller than eager'}"
        )
    return failures


def check_work_stealing(name):
    """Single-report gate on the E20 skewed-load arms: the chunked
    (steal) arm must beat the static split on wall-clock with a
    barrier-wait share no worse — but only where the comparison means
    anything. On a host whose parallelism collapsed the arms below 4
    effective workers the two runs execute the identical serial
    schedule, so the check warns and skips (0 failures)."""
    report = load(name)
    arms = {}
    for record in report.get("records", []):
        if record.get("name") != "work_stealing":
            continue
        cfg = record.get("config", {})
        m = record.get("metrics", {})
        key = (cfg.get("mesh"), cfg.get("bio_ms"), cfg.get("arm"))
        arms[key] = {
            "wall_ms": float(m.get("wall_ms", float("nan"))),
            "barrier": float(m.get("barrier_wait_share", 0.0)),
            "workers": min(
                int(cfg.get("effective_threads", 1)), int(cfg.get("host_cores", 1))
            ),
        }
    pairs = sorted(
        (mesh, bio)
        for (mesh, bio, arm) in arms
        if arm == "static" and (mesh, bio, "steal") in arms
    )
    if not pairs:
        fail_usage(
            f"{name} has no paired static/steal work_stealing rows — "
            "regenerate with `SPINN_FULL=1 cargo run --release -p "
            "spinn-bench --bin run_experiments -- E20`"
        )
    failures = 0
    checked = 0
    print(f"work-stealing check on {name}:")
    for mesh, bio in pairs:
        st = arms[(mesh, bio, "static")]
        wk = arms[(mesh, bio, "steal")]
        workers = min(st["workers"], wk["workers"])
        if workers < 4:
            print(
                f"  {mesh} bio_ms={bio}: only {workers} effective worker(s) — "
                "both arms ran the identical serial schedule; skipping "
                "(nothing to steal on a collapsed host)"
            )
            continue
        checked += 1
        ok_wall = wk["wall_ms"] < st["wall_ms"]
        ok_share = wk["barrier"] <= st["barrier"]
        failures += (not ok_wall) + (not ok_share)
        print(
            f"  {mesh} bio_ms={bio}: wall static {st['wall_ms']:.1f} ms vs "
            f"steal {wk['wall_ms']:.1f} ms "
            f"{'ok' if ok_wall else '<< steal must beat static'}; "
            f"barrier share {st['barrier']:.3f} -> {wk['barrier']:.3f} "
            f"{'ok' if ok_share else '<< stealing must not raise barrier share'}"
        )
    if checked == 0 and failures == 0:
        print(
            "  every pair skipped (collapsed host) — gate passes vacuously, "
            "the rows record the collapse honestly"
        )
    return failures


def resilience_floor(rate):
    """Minimum acceptable mean delivery ratio at a given cable-failure
    rate. Linear in the failure rate with generous slack below the
    measured curve (full mode measures ~1.0, 0.997, 0.974, 0.881,
    0.694, 0.497 at rates 0, 0.05, 0.1, 0.2, 0.35, 0.5): emergency
    routing must keep absorbing sparse death, and heavy death must not
    collapse below what detours + monitor reissue recover."""
    if rate == 0.0:
        return 0.999
    return max(0.15, 0.92 - 1.3 * rate)


def check_resilience(name):
    """Single-report gate on a resilience-campaign report (E19):

    * every ``delivery_vs_failure_rate`` bucket meets the per-rate
      delivery floor (the fault-free bucket must score ~1.0);
    * the paired ``repair_recovery`` record shows live repair actually
      recovering delivery (``repair_link_gain`` positive) and table
      re-routing taking standing emergency/drop load off the fabric
      (``reroute_load_cut`` positive);
    * the campaign's replays were bit-exact across thread counts.

    The campaign is seeded and deterministic, so these are exact
    reproducible numbers, not statistical tests. Returns the number of
    failed checks (exits 2 if the report has no resilience rows)."""
    report = load(name)
    curve = []
    recovery = None
    campaign = None
    for record in report.get("records", []):
        if record.get("name") == "delivery_vs_failure_rate":
            cfg = record.get("config", {})
            m = record.get("metrics", {})
            if m.get("delivery_ratio_mean") is not None:
                curve.append(
                    (float(cfg.get("failure_rate", 0.0)), float(m["delivery_ratio_mean"]))
                )
        elif record.get("name") == "repair_recovery":
            recovery = record.get("metrics", {})
        elif record.get("name") == "campaign":
            campaign = record.get("metrics", {})
    if not curve:
        fail_usage(
            f"{name} has no delivery_vs_failure_rate rows — not a resilience "
            "report (regenerate with `cargo run --release -p spinn-bench "
            "--bin run_experiments -- E19`)"
        )
    failures = 0
    print(f"resilience check on {name}:")
    for rate, ratio in sorted(curve):
        floor = resilience_floor(rate)
        ok = ratio >= floor
        failures += not ok
        print(
            f"  rate {rate:.3f}: delivery {ratio:.3f} "
            f"(floor {floor:.3f}) {'ok' if ok else '<< below floor'}"
        )
    if recovery is None:
        print("  no repair_recovery record << required", file=sys.stderr)
        failures += 1
    else:
        gain = float(recovery.get("repair_link_gain", float("nan")))
        cut = float(recovery.get("reroute_load_cut", float("nan")))
        ok_gain = gain > 0.0
        ok_cut = cut > 0.0
        failures += (not ok_gain) + (not ok_cut)
        print(
            f"  repair_link gain {gain:+.3f} "
            f"{'ok' if ok_gain else '<< repair must recover delivery'}"
        )
        print(
            f"  reroute load cut {cut:+.1%} "
            f"{'ok' if ok_cut else '<< reroute must shed emergency/drop load'}"
        )
    if campaign is None:
        print("  no campaign record << required", file=sys.stderr)
        failures += 1
    else:
        exact = campaign.get("determinism_bit_exact")
        ok = exact is True
        failures += not ok
        print(
            f"  replays bit-exact: {exact} "
            f"{'ok' if ok else '<< thread-count replays must be bit-exact'}"
        )
    return failures


def check_serving(name):
    """Single-report gate on a serving report (E21):

    * ``serving`` rows cover at least 3 distinct client-concurrency
      levels on the steady arm, each with positive jobs/sec and
      finite p50 <= p99 latency actually reported;
    * every steady-arm row holds the warm-hit floor (> 0.8): after
      each model's one cold build, jobs must ride warm sessions;
    * the churn arm really exercised the eviction path (evictions and
      rehydrates both positive) and ``serving_determinism`` confirms
      the evicted runs' spike streams matched the steady arm
      bit-for-bit;
    * the ``serving_quota`` burst rejected at least one job and its
      accept/reject trace replayed identically (``deterministic``).

    The load generator is seeded and the server clock-free in its
    decisions, so these are exact reproducible verdicts. Returns the
    number of failed checks (exits 2 if the report has no serving
    rows)."""
    report = load(name)
    steady = {}
    churn = []
    determinism = None
    quota = None
    for record in report.get("records", []):
        cfg = record.get("config", {})
        m = record.get("metrics", {})
        if record.get("name") == "serving":
            if cfg.get("arm") == "steady":
                steady[cfg.get("clients")] = m
            elif cfg.get("arm") == "churn":
                churn.append(m)
        elif record.get("name") == "serving_determinism":
            determinism = m
        elif record.get("name") == "serving_quota":
            quota = m
    if not steady:
        fail_usage(
            f"{name} has no steady-arm serving rows — not a serving report "
            "(regenerate with `cargo run --release -p spinn-bench "
            "--bin run_experiments -- E21`)"
        )
    failures = 0
    print(f"serving check on {name}:")
    levels = sorted(k for k in steady if k is not None)
    ok_levels = len(levels) >= 3
    failures += not ok_levels
    print(
        f"  steady client levels: {levels} "
        f"{'ok' if ok_levels else '<< need >= 3 concurrency levels'}"
    )
    for clients in levels:
        m = steady[clients]
        jps = float(m.get("jobs_per_sec", 0.0))
        p50 = float(m.get("p50_latency_ms", float("nan")))
        p99 = float(m.get("p99_latency_ms", float("nan")))
        warm = float(m.get("warm_hit_ratio", 0.0))
        ok_thru = jps > 0.0 and p50 <= p99 and p50 > 0.0
        ok_warm = warm > 0.8
        failures += (not ok_thru) + (not ok_warm)
        print(
            f"  clients={clients}: {jps:.1f} jobs/sec, p50 {p50:.2f} ms, "
            f"p99 {p99:.2f} ms {'ok' if ok_thru else '<< need positive jobs/sec and p50 <= p99'}; "
            f"warm-hit {warm:.1%} {'ok' if ok_warm else '<< floor is 80%'}"
        )
    if not churn:
        print("  no churn-arm serving row << required", file=sys.stderr)
        failures += 1
    for m in churn:
        ev = float(m.get("evictions", 0.0))
        rh = float(m.get("rehydrates", 0.0))
        ok = ev > 0.0 and rh > 0.0
        failures += not ok
        print(
            f"  churn: {ev:.0f} evictions, {rh:.0f} rehydrates "
            f"{'ok' if ok else '<< the tight budget must force the eviction path'}"
        )
    if determinism is None:
        print("  no serving_determinism record << required", file=sys.stderr)
        failures += 1
    else:
        exact = determinism.get("eviction_bit_exact")
        ok = exact is True
        failures += not ok
        print(
            f"  eviction bit-exact: {exact} "
            f"{'ok' if ok else '<< evicted spike streams must match the steady arm'}"
        )
    if quota is None:
        print("  no serving_quota record << required", file=sys.stderr)
        failures += 1
    else:
        rejected = float(quota.get("rejected_total", 0.0))
        det = quota.get("deterministic")
        ok_rej = rejected > 0.0
        ok_det = det is True
        failures += (not ok_rej) + (not ok_det)
        print(
            f"  quota burst: {rejected:.0f} rejected "
            f"{'ok' if ok_rej else '<< the burst must trip a quota'}; "
            f"deterministic: {det} "
            f"{'ok' if ok_det else '<< replays must reject identically'}"
        )
    return failures


def compare_kind(kind, new_report, base_report, new_name, base_name, args):
    """Compares one row kind; returns (rows, failures) where rows are
    (key, base, new, delta, regressed) tuples. Exits 2 on missing rows
    unless --allow-missing-rows."""
    label, extract, higher_better = KINDS[kind]
    new_rows = extract(new_report)
    base_rows = extract(base_report)
    shared = sorted(set(new_rows) & set(base_rows), key=str)
    missing = sorted((set(new_rows) | set(base_rows)) - set(shared), key=str)
    if missing and not args.allow_missing_rows:
        for key in missing:
            where = new_name if key in new_rows else base_name
            print(
                f"error: {label} row {key} exists only in {where} — a vanished "
                "row must fail the gate, not be skipped (pass "
                "--allow-missing-rows to compare different sweep grids)",
                file=sys.stderr,
            )
        sys.exit(2)
    rows = []
    failures = 0
    for key in shared:
        base, new = base_rows[key], new_rows[key]
        if higher_better:
            delta = (new - base) / base if base > 0 else 0.0
            regressed = base > 0 and new < base * (1.0 - args.max_regress)
        else:
            delta = (base - new) / base if base > 0 else 0.0  # improvement > 0
            regressed = base > 0 and new > base * (1.0 + args.max_regress)
        failures += regressed
        rows.append((key, base, new, delta, regressed))
    return rows, failures, missing


def print_rows(label, rows):
    print(f"  {label}:")
    print(f"    {'row':<40} {'baseline':>12} {'new':>12} {'delta':>8}")
    for key, base, new, delta, regressed in rows:
        flag = "  << REGRESSION" if regressed else ""
        print(
            f"    {str(key):<40} {base:>12.1f} {new:>12.1f} {delta:>+7.1%}{flag}"
        )


def compare_pair(new_name, base_name, kinds, args):
    """Full pairwise comparison; returns (total failures, markdown rows)."""
    new_report = load(new_name)
    base_report = load(base_name)
    print(
        f"comparing {new_name} (commit {new_report.get('commit', '?')[:12]}) "
        f"against {base_name} (commit {base_report.get('commit', '?')[:12]}); "
        f"allowed regression {args.max_regress:.0%}"
    )
    total_failures = 0
    any_rows = False
    md = []
    for kind in kinds:
        rows, failures, missing = compare_kind(
            kind, new_report, base_report, new_name, base_name, args
        )
        if not rows:
            continue
        any_rows = True
        total_failures += failures
        print_rows(KINDS[kind][0], rows)
        if missing:
            print(f"    ({len(missing)} row(s) present in only one report; skipped)")
        for key, base, new, delta, regressed in rows:
            md.append(
                (base_name, new_name, kind, str(key), base, new, delta, regressed)
            )
    if not any_rows:
        fail_usage(
            f"{new_name} and {base_name} share no comparable rows "
            f"(kinds tried: {', '.join(kinds)})"
        )
    return total_failures, md


def write_summary(md_rows):
    """Appends the trajectory as a markdown table to $GITHUB_STEP_SUMMARY
    (if set) and always prints it to stdout."""
    lines = [
        "### Benchmark trajectory",
        "",
        "| baseline | new | kind | row | baseline value | new value | delta |",
        "|---|---|---|---|---:|---:|---:|",
    ]
    for base_name, new_name, kind, key, base, new, delta, regressed in md_rows:
        mark = " ⚠️" if regressed else ""
        lines.append(
            f"| {base_name} | {new_name} | {kind} | `{key}` "
            f"| {base:.1f} | {new:.1f} | {delta:+.1%}{mark} |"
        )
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as f:
            f.write(text)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("reports", nargs="+", help="NEW BASELINE, or --chain A B C ...")
    ap.add_argument(
        "--chain",
        action="store_true",
        help="treat the reports as a chronological chain (oldest first) and "
        "compare each consecutive pair, emitting a markdown trajectory table",
    )
    ap.add_argument(
        "--max-regress",
        type=float,
        default=0.20,
        help="maximum allowed fractional regression (default 0.20)",
    )
    ap.add_argument(
        "--kind",
        choices=["sweep", "micro", "perf", "resil", "memory", "serving", "all"],
        default="all",
        help="row kinds to compare (default: all kinds present in both reports)",
    )
    ap.add_argument(
        "--parallel-speedup",
        action="store_true",
        help="check a single report's phase_breakdown rows: 4-thread wall_ms "
        "strictly below 1-thread, 4-thread barrier share at most 0.5",
    )
    ap.add_argument(
        "--resilience",
        action="store_true",
        help="check a single resilience-campaign report (E19): per-rate "
        "delivery floors, positive paired repair recovery, bit-exact replays",
    )
    ap.add_argument(
        "--memory",
        action="store_true",
        help="check a single scaling-study report (E20): full-machine scale "
        "floors (chips/cores/synapses), reported bytes/synapse, and the lazy "
        "loader arm resident-smaller than the eager one",
    )
    ap.add_argument(
        "--work-stealing",
        action="store_true",
        help="check a single scaling-study report (E20): the chunked steal "
        "arm beats the static split on the skewed net at 4+ effective "
        "workers (warns and skips on collapsed hosts)",
    )
    ap.add_argument(
        "--serving",
        action="store_true",
        help="check a single serving report (E21): >= 3 steady client "
        "levels with jobs/sec and p50/p99 reported, warm-hit ratio above "
        "0.8, a churn arm that evicted and rehydrated bit-exactly, and a "
        "deterministic quota-rejection replay",
    )
    ap.add_argument(
        "--allow-missing-rows",
        action="store_true",
        help="skip rows present in only one report instead of failing "
        "(for comparing quick-mode against full-mode sweep grids)",
    )
    args = ap.parse_args(argv)
    kinds = (
        ["sweep", "micro", "perf", "resil", "memory", "serving"]
        if args.kind == "all"
        else [args.kind]
    )

    single_checks = [
        flag
        for flag, on in [
            ("--parallel-speedup", args.parallel_speedup),
            ("--resilience", args.resilience),
            ("--memory", args.memory),
            ("--work-stealing", args.work_stealing),
            ("--serving", args.serving),
        ]
        if on
    ]
    if len(single_checks) > 1:
        fail_usage(f"{' and '.join(single_checks)} are separate checks")
    if args.parallel_speedup:
        if args.chain or len(args.reports) != 1:
            fail_usage("--parallel-speedup takes exactly one report")
        failures = check_parallel_speedup(args.reports[0])
        if failures:
            print(f"FAIL: {failures} parallel-speedup check(s) failed", file=sys.stderr)
            sys.exit(1)
        print("OK: threads pay — 4-thread wall beats 1-thread within barrier bounds")
        return
    if args.resilience:
        if args.chain or len(args.reports) != 1:
            fail_usage("--resilience takes exactly one report")
        failures = check_resilience(args.reports[0])
        if failures:
            print(f"FAIL: {failures} resilience check(s) failed", file=sys.stderr)
            sys.exit(1)
        print(
            "OK: the campaign degrades gracefully, live repair recovers "
            "delivery, replays are bit-exact"
        )
        return
    if args.memory:
        if args.chain or len(args.reports) != 1:
            fail_usage("--memory takes exactly one report")
        failures = check_memory(args.reports[0])
        if failures:
            print(f"FAIL: {failures} memory/scale check(s) failed", file=sys.stderr)
            sys.exit(1)
        print(
            "OK: the full machine builds and runs in host RAM with the lazy "
            "arena resident-smaller than the eager build"
        )
        return
    if args.work_stealing:
        if args.chain or len(args.reports) != 1:
            fail_usage("--work-stealing takes exactly one report")
        failures = check_work_stealing(args.reports[0])
        if failures:
            print(f"FAIL: {failures} work-stealing check(s) failed", file=sys.stderr)
            sys.exit(1)
        print("OK: chunked stealing pays (or the host honestly can't show it)")
        return
    if args.serving:
        if args.chain or len(args.reports) != 1:
            fail_usage("--serving takes exactly one report")
        failures = check_serving(args.reports[0])
        if failures:
            print(f"FAIL: {failures} serving check(s) failed", file=sys.stderr)
            sys.exit(1)
        print(
            "OK: the pool serves warm across concurrency levels, evicts "
            "bit-exactly, and rejects deterministically"
        )
        return

    failures = 0
    md_rows = []
    if args.chain:
        if len(args.reports) < 2:
            fail_usage("--chain needs at least two reports (oldest first)")
        for old, new in zip(args.reports, args.reports[1:]):
            f, md = compare_pair(new, old, kinds, args)
            failures += f
            md_rows.extend(md)
        write_summary(md_rows)
    else:
        if len(args.reports) != 2:
            fail_usage("pairwise mode takes exactly NEW and BASELINE")
        failures, md_rows = compare_pair(args.reports[0], args.reports[1], kinds, args)

    if failures:
        print(
            f"FAIL: {failures} row(s) regressed more than {args.max_regress:.0%}",
            file=sys.stderr,
        )
        sys.exit(1)
    print("OK: all compared rows within bounds")


if __name__ == "__main__":
    main()
