#!/usr/bin/env python3
"""Diff two BENCH_*.json reports' end-to-end spikes/sec and fail on regression.

Usage:
    python3 scripts/bench_compare.py NEW.json BASELINE.json [--max-regress 0.20]

Matches `end_to_end_sweep` records between the two reports by their
(mesh, queue, threads, bio_ms) configuration and compares the
`spikes_per_sec` metric. Exits:

    0  every matched row is within the allowed regression
    1  at least one matched row regressed more than --max-regress
    2  usage error, unreadable input, or no comparable rows

Only Python's standard library is used (the build environment is
offline). Rows present in one report but not the other are reported and
skipped — the sweep grids may differ between quick and full modes.
"""

import argparse
import json
import sys


def sweep_rows(report):
    """(mesh, queue, threads, bio_ms) -> spikes_per_sec for every sweep record."""
    rows = {}
    for record in report.get("records", []):
        if record.get("name") != "end_to_end_sweep":
            continue
        cfg = record.get("config", {})
        metrics = record.get("metrics", {})
        key = (
            cfg.get("mesh"),
            cfg.get("queue"),
            cfg.get("threads"),
            cfg.get("bio_ms"),
        )
        sps = metrics.get("spikes_per_sec")
        if sps is not None:
            rows[key] = float(sps)
    return rows


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("new", help="freshly measured report (e.g. BENCH_e15.json)")
    ap.add_argument("baseline", help="committed baseline (e.g. BENCH_e14.json)")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=0.20,
        help="maximum allowed fractional spikes/sec drop (default 0.20)",
    )
    args = ap.parse_args()

    new_report = load(args.new)
    base_report = load(args.baseline)
    new_rows = sweep_rows(new_report)
    base_rows = sweep_rows(base_report)

    shared = sorted(set(new_rows) & set(base_rows), key=str)
    if not shared:
        print("error: the reports share no comparable end_to_end_sweep rows", file=sys.stderr)
        sys.exit(2)

    print(
        f"comparing {args.new} (commit {new_report.get('commit', '?')[:12]}) against "
        f"{args.baseline} (commit {base_report.get('commit', '?')[:12]}); "
        f"allowed regression {args.max_regress:.0%}"
    )
    header = f"{'mesh':<8} {'queue':<10} {'threads':>7} {'baseline':>12} {'new':>12} {'delta':>8}"
    print(header)
    failures = 0
    for key in shared:
        mesh, queue, threads, _bio_ms = key
        base = base_rows[key]
        new = new_rows[key]
        delta = (new - base) / base if base > 0 else 0.0
        flag = ""
        if base > 0 and new < base * (1.0 - args.max_regress):
            flag = "  << REGRESSION"
            failures += 1
        print(
            f"{str(mesh):<8} {str(queue):<10} {threads!s:>7} {base:>12.0f} {new:>12.0f} "
            f"{delta:>+7.1%}{flag}"
        )

    skipped = (set(new_rows) | set(base_rows)) - set(shared)
    if skipped:
        print(f"({len(skipped)} row(s) present in only one report; skipped)")

    if failures:
        print(
            f"FAIL: {failures}/{len(shared)} row(s) regressed more than "
            f"{args.max_regress:.0%}",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"OK: {len(shared)} row(s) within bounds")


if __name__ == "__main__":
    main()
