//! Quickstart: an excitatory/inhibitory network on a 4x4-chip machine.
//!
//! Builds a 500-neuron balanced network, runs 500 ms of biological time,
//! and prints the run report: spike counts, fabric statistics, spike
//! latency percentiles (the paper's "well within 1 ms" claim), real-time
//! health and energy.
//!
//! Run with: `cargo run --release --example quickstart`

use spinnaker::prelude::*;

fn main() {
    // 1. Describe the network: 400 regular-spiking excitatory cells
    //    driven by a bias current, 100 fast-spiking inhibitory cells fed
    //    by them, inhibition closing the loop.
    let mut net = NetworkGraph::new();
    let exc = net.population(
        "excitatory",
        400,
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
        9.0, // nA tonic drive
    );
    let inh = net.population(
        "inhibitory",
        100,
        NeuronKind::Izhikevich(IzhikevichParams::fast_spiking()),
        0.0,
    );
    net.project(
        exc,
        inh,
        Connector::FixedProbability(0.1),
        Synapses::uniform((300, 700), (1, 4)),
        1,
    );
    net.project(
        inh,
        exc,
        Connector::FixedProbability(0.1),
        Synapses::constant(-400, 1),
        2,
    );

    // 2. Build onto a 4x4-chip SpiNNaker machine (16 chips, 320 cores).
    let sim = Simulation::build(&net, SimConfig::new(4, 4)).expect("network fits the machine");
    println!(
        "placed {} slices; routing plan: {} entries ({} elided by default routing)",
        sim.placement().slices().len(),
        sim.route_stats().total_entries,
        sim.route_stats().elided_entries,
    );

    // 3. Run 500 ms of biological real time.
    let done = sim.run(500);

    // 4. Inspect.
    println!("{}", done.report());
    println!(
        "excitatory rate: {:.1} Hz, inhibitory rate: {:.1} Hz",
        done.mean_rate_hz(exc, 400, 500),
        done.mean_rate_hz(inh, 100, 500),
    );
    assert_eq!(done.machine.realtime_violations(), 0, "real time held");
}
