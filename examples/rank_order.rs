//! N-of-M and rank-order codes (§5.4): capacity, robustness, decoding.
//!
//! "Information may be encoded in the choice of a subset of a population
//! ... an N-of-M code ... In an extension of this approach, the N active
//! neurons convey additional information in the order in which they fire."
//!
//! Run with: `cargo run --release --example rank_order`

use spinnaker::neuron::coding::{
    n_of_m_capacity_bits, rank_order_capacity_bits, rank_order_decode, rank_order_encode,
    rank_order_similarity,
};
use spinnaker::sim::Xoshiro256;

fn main() {
    println!("== Code capacity: N-of-M vs rank-order (bits) ==\n");
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>8}",
        "M", "N", "N-of-M", "rank-order", "gain"
    );
    for (m, n) in [(16u64, 4u64), (64, 8), (256, 32), (1000, 100), (4096, 256)] {
        let nm = n_of_m_capacity_bits(m, n);
        let ro = rank_order_capacity_bits(m, n);
        println!("{m:>6} {n:>6} {nm:>14.1} {ro:>14.1} {:>7.1}x", ro / nm);
    }
    println!("\n(The paper notes N, M 'in the hundreds or thousands' in biology —");
    println!(" rank order multiplies the alphabet by N!, a huge capacity gain.)\n");

    println!("== Decoding a noisy stimulus through a rank-order code ==\n");
    let mut rng = Xoshiro256::seed_from_u64(42);
    let m = 64;
    let stimulus: Vec<f64> = (0..m)
        .map(|i| ((i as f64) / 9.0).sin().abs() * 10.0)
        .collect();
    let clean = rank_order_encode(&stimulus, 12, 0.0);
    println!("clean firing order: {:?}", &clean.order[..8]);
    println!(
        "{:>12} {:>12} {:>14}",
        "noise (sd)", "similarity", "top-cell kept?"
    );
    for noise in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let noisy: Vec<f64> = stimulus.iter().map(|&v| v + rng.normal() * noise).collect();
        let code = rank_order_encode(&noisy, 12, 0.0);
        let sim = rank_order_similarity(&clean, &code, m, 0.9);
        println!(
            "{noise:>12.1} {sim:>12.3} {:>14}",
            code.order[0] == clean.order[0]
        );
    }

    println!("\n== Geometric-sensitivity decoding ==\n");
    let est = rank_order_decode(&clean, m, 0.85);
    let mut pairs: Vec<(usize, f64)> = est.iter().cloned().enumerate().collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top decoded components (index, weight):");
    for (i, w) in pairs.iter().take(6) {
        println!(
            "  neuron {i:>3}: {w:.3}  (true stimulus {:.2})",
            stimulus[*i]
        );
    }
}
