//! A synfire chain across the machine: bounded asynchrony in action
//! (§3.1) and soft axonal delays (§3.2).
//!
//! Ten populations in a feed-forward chain, each on a different chip. A
//! kick to the first population launches a wave that travels the chain;
//! the inter-population latency is set *entirely* by the programmed
//! synaptic delay, not by the (nanosecond-scale) electronic transit —
//! "time models itself".
//!
//! Run with: `cargo run --release --example synfire_chain`

use spinnaker::prelude::*;

fn main() {
    const STAGES: usize = 10;
    const STAGE_SIZE: u32 = 60;
    const STAGE_DELAY_MS: u8 = 5;

    let mut net = NetworkGraph::new();
    let stages: Vec<PopulationId> = (0..STAGES)
        .map(|i| {
            net.population(
                &format!("stage{i}"),
                STAGE_SIZE,
                NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
                // Stage 0 is driven; the rest are quiet until the wave
                // arrives.
                if i == 0 { 12.0 } else { 0.0 },
            )
        })
        .collect();
    for w in stages.windows(2) {
        net.project(
            w[0],
            w[1],
            Connector::FixedProbability(0.5),
            Synapses::constant(400, STAGE_DELAY_MS),
            9,
        );
    }

    let sim =
        Simulation::build(&net, SimConfig::new(4, 4).with_neurons_per_core(64)).expect("fits");
    println!(
        "chain of {STAGES} stages placed on {} cores; {} routing entries\n",
        sim.placement().slices().len(),
        sim.route_stats().total_entries
    );
    let done = sim.run(120);

    // First-spike time per stage shows the wave.
    println!("{:>8} {:>12} {:>10}", "stage", "first spike", "spikes");
    let spikes = done.spikes();
    let mut prev: Option<u32> = None;
    for (i, &pop) in stages.iter().enumerate() {
        let first = spikes
            .iter()
            .filter(|s| s.pop == pop)
            .map(|s| s.time_ms)
            .min();
        let count = spikes.iter().filter(|s| s.pop == pop).count();
        match first {
            Some(t) => {
                let step = prev.map(|p| format!("(+{} ms)", t - p)).unwrap_or_default();
                println!("{i:>8} {t:>9} ms {count:>10} {step}");
                prev = Some(t);
            }
            None => println!("{i:>8} {:>12} {count:>10}", "-"),
        }
    }
    println!(
        "\nwave step ≈ {} ms = the programmed synaptic delay: the biological",
        STAGE_DELAY_MS
    );
    println!("delay is re-inserted at the target although the fabric delivers in ~us.");
    println!(
        "fabric p99 latency: {} ns (well within 1 ms)",
        done.machine.spike_latency().percentile(99.0)
    );
}
