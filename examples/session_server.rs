//! Multi-tenant serving: a warm session pool behind admission control.
//!
//! The paper's million-core machine is operated as a shared facility
//! (§5.2): many hosts check in, load their networks, and drive them
//! through run segments while the fabric stays resident. This example
//! is that machine room in miniature, built on the `spinn-serve`
//! crate: three registered models share a pool of warm
//! [`RunSession`]s, two tenants (one quota-limited) push a job stream
//! through a bounded queue, compatible jobs coalesce onto one warm
//! session, and an explicit evict -> rehydrate round-trip shows the
//! pool checkpointing a model out and bringing it back without
//! perturbing the service.
//!
//! Run with: `cargo run --release --example session_server`

use spinn_serve::{JobSpec, ServeConfig, Server, Stimulus, TenantId, TenantQuota};
use spinnaker::prelude::*;

/// One serving workload: a feed-forward chain, sized by `scale` so
/// each registered model has a distinct footprint and spike stream.
fn model_net(scale: u32) -> NetworkGraph {
    let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
    let mut net = NetworkGraph::new();
    let input = net.population("input", 192 + 64 * scale, kind, 0.0);
    let hidden = net.population("hidden", 384 + 64 * scale, kind, 0.0);
    let out = net.population("out", 128, kind, 0.0);
    net.project(
        input,
        hidden,
        Connector::FixedProbability(0.05),
        Synapses::uniform((500, 900), (1, 4)),
        11 + u64::from(scale),
    );
    net.project(
        hidden,
        out,
        Connector::FixedProbability(0.08),
        Synapses::constant(650, 2),
        12 + u64::from(scale),
    );
    net
}

/// A tenant's label, for the printout.
fn tname(server: &Server, t: TenantId) -> &str {
    server.tenant_name(t).unwrap_or("?")
}

fn main() {
    // A bounded queue and batches of up to 4 compatible jobs. The
    // resident budget is left unbounded here; the evict -> rehydrate
    // path is demonstrated explicitly below (E21 measures it under a
    // real byte budget, at load).
    let mut server = Server::new(ServeConfig {
        queue_cap: 32,
        resident_budget_bytes: u64::MAX,
        max_batch: 4,
        threads: 1,
    });

    // Two tenants: "lab" runs unmetered, "student" is capped at 2
    // in-flight jobs and 100 biological milliseconds total.
    let lab = server.register_tenant("lab", TenantQuota::unlimited());
    let student = server.register_tenant("student", TenantQuota::new(2, 100));

    // Three models of staggered size; nothing is built until each
    // model's first job dispatches.
    let cfg = SimConfig::new(4, 4);
    let models: Vec<_> = (0..3u32)
        .map(|m| server.register_model(model_net(m), cfg.clone()))
        .collect();
    let input = PopulationId::from_index(0);
    let job = |tenant, model: usize, run_ms, i: u32| JobSpec {
        tenant,
        model: models[model],
        run_ms,
        stimulus: vec![Stimulus {
            pop: input,
            rate_hz: 40.0 + 20.0 * f64::from(i % 4),
            seed: u64::from(i) + 1,
        }],
    };

    // The burst: 24 submissions round-robining the models, the student
    // tenant asking for every fourth job. Quota rejections are part of
    // normal operation — typed, counted, and deterministic in arrival
    // order.
    println!("submitting 24 jobs across 3 models / 2 tenants:");
    for i in 0..24u32 {
        let tenant = if i % 4 == 3 { student } else { lab };
        match server.submit(job(tenant, (i % 3) as usize, 30, i)) {
            Ok(id) => println!(
                "  job {i:>2} ({:>7}) -> admitted as {id}",
                tname(&server, tenant)
            ),
            Err(e) => println!(
                "  job {i:>2} ({:>7}) -> rejected: {e}",
                tname(&server, tenant)
            ),
        }
    }
    println!(
        "\nqueued {} / rejected {}; student in-flight {} of 2, {} bio-ms of budget left",
        server.queue_len(),
        server.stats().rejected,
        server.in_flight(student),
        server.remaining_tick_budget(student),
    );

    // Serve everything. Each poll() dispatches one batch: the
    // head-of-queue job picks the model, then up to 4 queued jobs on
    // that model ride the same warm session back-to-back.
    let results = server.drain().expect("models fit the machine");
    println!("\nserved {} jobs:", results.len());
    for r in &results {
        println!(
            "  {:<6} {:<8} model{}  {:>5} spikes  {}  ({:>5.1} ms wall)",
            r.job.to_string(),
            tname(&server, r.tenant),
            r.model.index(),
            r.spikes.len(),
            if r.warm_hit { "warm" } else { "cold" },
            r.service_ms,
        );
    }
    let stats = server.stats();
    println!(
        "\nbatching: {} batches served {} jobs ({} coalesced onto a leader's session)",
        stats.batches, stats.jobs_completed, stats.coalesced_jobs,
    );
    println!(
        "warm-hit ratio: {:.1}% (each model pays one cold build; every other job is warm)",
        stats.warm_hit_ratio() * 100.0,
    );
    assert!(
        stats.warm_hit_ratio() > 0.8,
        "batching must keep the stream warm"
    );

    // Evict -> rehydrate: checkpoint model 0 out of residency (as the
    // byte-budget does under memory pressure), then serve it again.
    // The rehydrated session picks up exactly where the checkpoint
    // left it — tests/serving_invariants.rs pins that the spike
    // streams are bit-exact across this round-trip.
    assert!(server.evict(models[0]), "model 0 was resident");
    let follow_up = server.submit(job(lab, 0, 30, 24)).expect("queue has room");
    let served = server.drain().expect("rehydrate succeeds");
    let pool = server.pool_stats();
    println!(
        "\nevict -> rehydrate: {} ran on a session restored from its checkpoint \
         ({} cold builds, {} evictions, {} rehydrates, peak {} KiB resident)",
        follow_up,
        pool.cold_builds,
        pool.evictions,
        pool.rehydrates,
        pool.peak_resident_bytes / 1024,
    );
    assert_eq!(served.len(), 1);
    assert!(pool.evictions > 0 && pool.rehydrates > 0);

    // A late student job over its remaining tick budget: the third
    // rejection class, reported with the numbers that justify it.
    if let Err(e) = server.submit(job(student, 0, 80, 25)) {
        println!("late student job: rejected: {e}");
    }

    // Per-tenant accounting rides the standard telemetry pipeline.
    println!("\n{}", server.telemetry().render_table());
}
