//! Warm multi-run serving: one resident machine, a stream of jobs.
//!
//! The paper's million-core machine is operated as a shared facility
//! (§5.2): a host checks in, loads a network once, then drives it
//! through many run segments while the fabric stays resident. This
//! example is that serving loop in miniature — it builds a network
//! *once*, converts it into a [`RunSession`], and serves N sequential
//! "jobs" against the one build, each job swapping the stimulus program
//! (different Poisson rates, targeted probes) and reading back its own
//! spikes. A checkpoint is taken mid-stream and verified to resume
//! bit-exactly, and the cost of the warm path is compared against
//! rebuilding the machine for every job.
//!
//! Run with: `cargo run --release --example session_server`

use std::time::Instant;

use spinnaker::prelude::*;

fn network() -> NetworkGraph {
    let mut net = NetworkGraph::new();
    let input = net.population(
        "input",
        256,
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
        0.0,
    );
    let hidden = net.population(
        "hidden",
        512,
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
        0.0,
    );
    let out = net.population(
        "out",
        128,
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
        0.0,
    );
    net.project(
        input,
        hidden,
        Connector::FixedProbability(0.05),
        Synapses::uniform((500, 900), (1, 4)),
        11,
    );
    net.project(
        hidden,
        out,
        Connector::FixedProbability(0.08),
        Synapses::constant(650, 2),
        12,
    );
    net
}

fn main() {
    let net = network();
    let input = PopulationId::from_index(0);
    let out = PopulationId::from_index(2);
    let cfg = SimConfig::new(4, 4);

    // Build once: place -> route -> minimize -> stream-load.
    let t0 = Instant::now();
    let sim = Simulation::build(&net, cfg.clone()).expect("network fits the machine");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("build: {build_ms:.1} ms (paid once, amortized over every job)\n");
    let mut session = sim.into_session();

    // The job stream: each job is 40 ms of biological time under its
    // own stimulus program against the resident machine.
    let jobs: &[(&str, f64, u64)] = &[
        ("warm-up      20 Hz", 20.0, 1),
        ("sweep low    60 Hz", 60.0, 2),
        ("sweep mid   120 Hz", 120.0, 3),
        ("sweep high  240 Hz", 240.0, 4),
        ("probe burst 360 Hz", 360.0, 5),
    ];
    let job_ms = 40;

    let t_warm = Instant::now();
    let mut snapshot_check: Option<Snapshot> = None;
    let mut job_spikes: Vec<Vec<PopSpike>> = Vec::new();
    for (i, &(name, rate_hz, seed)) in jobs.iter().enumerate() {
        let t_job = Instant::now();
        session.clear_stimulus_sources();
        session.add_poisson(input, rate_hz, seed);
        session.run_for(job_ms);
        let spikes = session.take_spikes();
        let out_spikes = spikes.iter().filter(|s| s.pop == out).count();
        println!(
            "job {i}: {name:<20} {:>6} spikes ({out_spikes:>5} at out)  {:>6.1} ms wall",
            spikes.len(),
            t_job.elapsed().as_secs_f64() * 1e3,
        );
        job_spikes.push(spikes);
        // Pause the stream in the middle: serialize a checkpoint a
        // client could ship to another host.
        if i == 2 {
            let snap = session.checkpoint();
            println!(
                "      checkpoint after job {i}: {} KiB (core state + in-flight events + RNG streams)",
                snap.len() / 1024
            );
            snapshot_check = Some(snap);
        }
    }
    let warm_ms = t_warm.elapsed().as_secs_f64() * 1e3;

    // Resume the mid-stream checkpoint on a fresh build and re-run the
    // remaining jobs: every per-job readout must replay bit-exactly.
    let snap = snapshot_check.expect("checkpoint was taken");
    let mut resumed = RunSession::restore(&net, cfg.clone(), &snap)
        .expect("snapshot restores onto a fresh build");
    for (job, &(_, rate_hz, seed)) in jobs.iter().enumerate().skip(3) {
        resumed.clear_stimulus_sources();
        resumed.add_poisson(input, rate_hz, seed);
        resumed.run_for(job_ms);
        assert_eq!(
            resumed.take_spikes(),
            job_spikes[job],
            "restored job {job} must replay the live session bit-exactly"
        );
    }
    println!("\ncheckpoint resume: bit-exact across serialize -> fresh build -> restore");

    // The cold alternative: rebuild the machine for every job.
    let t_cold = Instant::now();
    for &(_, rate_hz, seed) in jobs {
        let mut s = Simulation::build(&net, cfg.clone())
            .expect("network fits the machine")
            .into_session();
        s.add_poisson(input, rate_hz, seed);
        s.run_for(job_ms);
        let _ = s.take_spikes();
    }
    let cold_ms = t_cold.elapsed().as_secs_f64() * 1e3;

    println!(
        "\nserving {} jobs x {job_ms} ms:  warm (one resident build) {warm_ms:>7.1} ms   \
         rebuild-per-job {cold_ms:>7.1} ms   ({:.1}x)",
        jobs.len(),
        cold_ms / warm_ms,
    );
    println!(
        "(this toy network builds in under a millisecond; experiment E16 measures the\n\
         same serving loop on the 100k-neuron workload, where the rebuilds dominate)"
    );
    let done = session.finish();
    println!("\n{}", done.report());
}
