//! Learning on the machine: pair-based STDP with SDRAM write-back.
//!
//! §5.3 of the paper: on the DMA-complete event the core processes the
//! connectivity data and "if the connectivity data is modified, a DMA
//! must be scheduled to write the changes back into SDRAM" — the
//! plasticity pathway. The conclusion calls understanding how the brain
//! "develops, learns and adapts" the Grand Challenge the machine serves.
//!
//! Here a driven population reliably fires just before its target
//! (causal, pre→post), so STDP potentiates the pathway; the weights climb
//! toward the bound and every modified row is written back to SDRAM.
//!
//! Run with: `cargo run --release --example plasticity`

use spinnaker::neuron::stdp::StdpParams;
use spinnaker::prelude::*;

fn main() {
    let mut net = NetworkGraph::new();
    let pre = net.population(
        "pre",
        60,
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
        11.0,
    );
    let post = net.population(
        "post",
        60,
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
        0.0,
    );
    // Strong feed-forward drive: pre spikes cause post spikes 1-2 ms
    // later, the classic potentiation protocol.
    net.project(
        pre,
        post,
        Connector::FixedFanOut(20),
        Synapses::constant(350, 1),
        5,
    );

    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "run (ms)", "pre spikes", "post spikes", "writebacks", "post rate Hz"
    );
    for ms in [100u32, 300, 600] {
        let cfg = SimConfig::new(2, 2).with_stdp(StdpParams {
            a_plus: 6.0,
            a_minus: 2.0, // potentiation-dominated protocol
            w_max_raw: 8 * 256,
            ..Default::default()
        });
        let done = Simulation::build(&net, cfg).unwrap().run(ms);
        println!(
            "{:>10} {:>12} {:>12} {:>14} {:>12.1}",
            ms,
            done.spike_count(pre),
            done.spike_count(post),
            done.machine.weight_writebacks(),
            done.mean_rate_hz(post, 60, ms),
        );
    }

    // Compare static vs plastic outcomes directly.
    let run = |stdp: bool| {
        let mut cfg = SimConfig::new(2, 2);
        if stdp {
            cfg = cfg.with_stdp(StdpParams {
                a_plus: 6.0,
                a_minus: 2.0,
                w_max_raw: 8 * 256,
                ..Default::default()
            });
        }
        let done = Simulation::build(&net, cfg).unwrap().run(600);
        (done.spike_count(post), done.machine.weight_writebacks())
    };
    let (static_post, wb0) = run(false);
    let (plastic_post, wb1) = run(true);
    println!("\nafter 600 ms: static synapses -> {static_post} post spikes ({wb0} writebacks)");
    println!("              plastic synapses -> {plastic_post} post spikes ({wb1} writebacks)");
    println!("\n(causal firing potentiates the pathway; every modified row costs a");
    println!(" write-back DMA, metered in the energy model — §5.3's plasticity path.)");
    assert!(plastic_post >= static_post);
}
