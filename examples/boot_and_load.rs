//! System bring-up (§5.2): monitor election, coordinate propagation,
//! neighbour rescue, and flood-fill application loading.
//!
//! Run with: `cargo run --release --example boot_and_load`

use spinnaker::machine::boot::{BootConfig, BootSim};
use spinnaker::machine::flood::{FloodConfig, FloodSim};

fn main() {
    println!("== Boot: self-test, election, coordinates, host check-in ==\n");
    println!(
        "{:>8} {:>10} {:>9} {:>8} {:>14} {:>14}",
        "machine", "monitors", "rescued", "dead", "coords (us)", "reports (us)"
    );
    for (w, h, fault) in [
        (4u32, 4u32, 0.0f64),
        (8, 8, 0.0),
        (16, 16, 0.0),
        (8, 8, 0.2),
        (8, 8, 0.5),
    ] {
        let mut cfg = BootConfig::new(w, h);
        cfg.core_fault_prob = fault;
        cfg.seed = 99;
        let out = BootSim::run(cfg);
        assert!(!out.election_violated, "monitor election must be unique");
        println!(
            "{:>5}x{:<2} {:>10} {:>9} {:>8} {:>14.1} {:>14.1}",
            w,
            h,
            out.monitors_first_round,
            out.rescued,
            out.dead_chips,
            out.coords_complete_ns.map_or(f64::NAN, |t| t as f64 / 1e3),
            out.reports_complete_ns.map_or(f64::NAN, |t| t as f64 / 1e3),
        );
    }
    println!("\n(Boot time grows with the mesh diameter, not its area; even at 50%");
    println!(" core-fault rates every chip still elects exactly one monitor.)\n");

    println!("== Flood-fill loading: time vs. machine size and redundancy ==\n");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>12}",
        "machine", "k", "load (us)", "nn packets", "mean copies"
    );
    for (w, h, k) in [
        (4u32, 4u32, 1u8),
        (8, 8, 1),
        (16, 16, 1),
        (24, 24, 1),
        (8, 8, 2),
        (8, 8, 3),
    ] {
        let mut cfg = FloodConfig::new(w, h);
        cfg.redundancy_k = k;
        let out = FloodSim::run(cfg);
        println!(
            "{:>5}x{:<2} {:>6} {:>12.1} {:>12} {:>12.2}",
            w,
            h,
            k,
            out.load_complete_ns.map_or(f64::NAN, |t| t as f64 / 1e3),
            out.nn_packets,
            out.mean_copies,
        );
    }
    println!("\n(\"load times almost independent of the size of the machine, with");
    println!(" trade-offs between load time and the degree of fault-tolerance\")");
}
