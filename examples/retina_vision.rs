//! The §5.4 retina: centre-surround ganglion cells, rank-order coding
//! and fault tolerance by receptive-field overlap.
//!
//! Encodes a stimulus with a two-scale DoG ganglion layer, reconstructs
//! it from the first 24 spikes (a rank-order code), then kills growing
//! fractions of the retina and watches the reconstruction degrade
//! *gracefully* — "if a neuron fails ... a near-neighbour with a similar
//! receptive field will take over and very little information will be
//! lost".
//!
//! Run with: `cargo run --release --example retina_vision`

use spinnaker::neuron::retina::{Image, RetinaLayer};
use spinnaker::sim::Xoshiro256;

fn render(img: &Image) -> String {
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = img
        .pixels()
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let mut out = String::new();
    for y in (0..img.height()).step_by(2) {
        for x in 0..img.width() {
            let v = (img.get(x as i64, y as i64) / max).clamp(0.0, 1.0);
            out.push(ramp[(v * 9.0).round() as usize]);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let stimulus = Image::gaussian_blob(32, 32, 12.0, 20.0, 4.0);
    let healthy = RetinaLayer::new(32, 32, &[(1.2, 4), (2.4, 8)]);
    println!(
        "retina: {} ganglion cells at 2 overlapping scales",
        healthy.len()
    );

    let code = healthy.encode(&stimulus, 24);
    println!(
        "rank-order code: first {} cells to fire = {:?}...",
        code.len(),
        &code.order[..code.len().min(8)]
    );
    let reference = healthy.reconstruct(&code, 0.9);
    println!("stimulus:\n{}", render(&stimulus));
    println!("reconstruction from 24 spikes:\n{}", render(&reference));

    // Progressive cell death.
    println!("{:>12} {:>8} {:>14}", "killed", "alive", "reconstruction");
    let mut rng = Xoshiro256::seed_from_u64(2011);
    for frac in [0.0, 0.05, 0.10, 0.20, 0.30, 0.50, 0.70] {
        let mut retina = RetinaLayer::new(32, 32, &[(1.2, 4), (2.4, 8)]);
        retina.kill_fraction(frac, &mut rng);
        let recon = retina.reconstruct(&retina.encode(&stimulus, 24), 0.9);
        let quality = reference.correlation(&recon);
        println!(
            "{:>11.0}% {:>8} {:>13.3}",
            frac * 100.0,
            retina.alive_count(),
            quality
        );
    }
    println!("\n(10% loss is nearly invisible; degradation is gradual, not a cliff.)");
}
