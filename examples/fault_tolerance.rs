//! Living with failure (§2.2, §5.3): emergency routing around a failed
//! link, and monitor-driven functional migration off a failed core.
//!
//! Part 1 runs the same feed-forward network with a healthy fabric, with
//! a failed link on the spike path (emergency routing rescues it), and
//! with emergency routing disabled (packets drop after wait1+wait2).
//!
//! Part 2 "kills" a core mid-experiment and migrates its neurons to a
//! spare core on another chip, rebuilding the routing entries — the
//! run-time "functional migration" the abstract promises.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use spinnaker::machine::config::MachineConfig;
use spinnaker::machine::machine::NeuralMachine;
use spinnaker::neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
use spinnaker::neuron::model::AnyNeuron;
use spinnaker::neuron::synapse::{SynapticRow, SynapticWord};
use spinnaker::noc::direction::Direction;
use spinnaker::noc::mesh::NodeCoord;
use spinnaker::noc::table::{McTableEntry, RouteSet};
use spinnaker::SpinnError;

fn neurons(n: usize) -> Vec<AnyNeuron> {
    (0..n)
        .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
        .collect()
}

/// Source population on (0,0) driving a target on (3,0), straight east.
/// CAM and DTCM capacity errors propagate instead of panicking.
fn build(emergency: bool) -> Result<NeuralMachine, SpinnError> {
    let mut cfg = MachineConfig::new(8, 8);
    cfg.fabric.router.emergency_enabled = emergency;
    let mut m = NeuralMachine::new(cfg);
    let src = NodeCoord::new(0, 0);
    let dst = NodeCoord::new(3, 0);
    m.load_core(src, 1, neurons(50), vec![11.0; 50], 0x8000)?;
    m.load_core(dst, 1, neurons(50), vec![0.0; 50], 0x10000)?;
    m.router_mut(src).table.insert(McTableEntry {
        key: 0x8000,
        mask: 0xFFFF_8000,
        route: RouteSet::EMPTY.with_link(Direction::East),
    })?;
    m.router_mut(dst).table.insert(McTableEntry {
        key: 0x8000,
        mask: 0xFFFF_8000,
        route: RouteSet::EMPTY.with_core(1),
    })?;
    for i in 0..50u32 {
        let row: SynapticRow = (0..50)
            .map(|t| SynapticWord::new(500, 1, t as u16))
            .collect();
        m.set_row(dst, 1, 0x8000 + i, row);
    }
    Ok(m)
}

fn main() -> Result<(), SpinnError> {
    println!("== Part 1: link failure and emergency routing (Fig. 8) ==\n");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>9}",
        "scenario", "tgt spikes", "emergency", "dropped", "p99 ns"
    );
    for (label, fail, emergency) in [
        ("healthy fabric", false, true),
        ("failed link + emergency", true, true),
        ("failed link, no emergency", true, false),
    ] {
        let mut m = build(emergency)?;
        if fail {
            // Break the middle of the default-routed segment.
            m.fail_link(NodeCoord::new(1, 0), Direction::East);
        }
        let m = m.run(300);
        let tgt = m.spikes().iter().filter(|s| s.key & 0x1_0000 != 0).count();
        let rs = m.router_stats();
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>9}",
            label,
            tgt,
            rs.emergency_reroutes,
            rs.dropped,
            m.spike_latency().percentile(99.0)
        );
    }

    println!("\n== Part 2: core failure and functional migration ==\n");
    let mut m = build(true)?;
    let m_healthy = m.run(300);
    let healthy_spikes = m_healthy
        .spikes()
        .iter()
        .filter(|s| s.key & 0x1_0000 != 0)
        .count();

    // Rebuild, then simulate the monitor detecting a failing core at
    // (3,0) and migrating its neurons to a spare core on (3,1).
    m = build(true)?;
    let payload = m.evict_core(NodeCoord::new(3, 0), 1).expect("loaded");
    m.install_core(NodeCoord::new(3, 1), 1, payload)?;
    // Re-point the last hop: extend the tree one hop north. The router
    // recompiles its lookup structure on the next packet.
    m.router_mut(NodeCoord::new(3, 0)).table.clear();
    m.router_mut(NodeCoord::new(3, 0))
        .table
        .insert(McTableEntry {
            key: 0x8000,
            mask: 0xFFFF_8000,
            route: RouteSet::EMPTY.with_link(Direction::North),
        })?;
    m.router_mut(NodeCoord::new(3, 1))
        .table
        .insert(McTableEntry {
            key: 0x8000,
            mask: 0xFFFF_8000,
            route: RouteSet::EMPTY.with_core(1),
        })?;
    let m = m.run(300);
    let migrated_spikes = m.spikes().iter().filter(|s| s.key & 0x1_0000 != 0).count();
    println!("target spikes before failure: {healthy_spikes}");
    println!("target spikes after migration: {migrated_spikes}");
    println!("(the population keeps functioning on its new core)");
    assert!(migrated_spikes > 0);
    Ok(())
}
