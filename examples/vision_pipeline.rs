//! End-to-end vision: the §5.4 retina feeding spikes into the machine.
//!
//! The retina encodes a stimulus as a rank-order spike salvo (§5.4: the
//! rising surge of a background rhythm carries one salvo); those spikes
//! enter the fabric as AER multicast packets, drive an integrating
//! population on the machine, and the population's first movers recover
//! the stimulus location — all inside the 1 ms real-time discipline.
//!
//! Run with: `cargo run --release --example vision_pipeline`

use spinnaker::machine::config::MachineConfig;
use spinnaker::machine::machine::NeuralMachine;
use spinnaker::neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
use spinnaker::neuron::model::AnyNeuron;
use spinnaker::neuron::retina::{Image, RetinaLayer};
use spinnaker::neuron::synapse::{SynapticRow, SynapticWord};
use spinnaker::noc::mesh::NodeCoord;
use spinnaker::noc::table::{McTableEntry, RouteSet};
use spinnaker::SpinnError;

const MS: u64 = 1_000_000;

fn main() -> Result<(), SpinnError> {
    // 1. The retina: 80 ganglion cells over a 32x32 field.
    let retina = RetinaLayer::new(32, 32, &[(1.2, 4), (2.4, 8)]);
    let n_cells = retina.len();

    // 2. A cortical population on the machine: one integrator neuron per
    //    ganglion cell, on chip (1,1) core 1. Each ganglion cell key
    //    0x1000+i drives integrator i one-to-one.
    let mut m = NeuralMachine::new(MachineConfig::new(4, 4));
    let cortex = NodeCoord::new(1, 1);
    let neurons: Vec<AnyNeuron> = (0..n_cells)
        .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
        .collect();
    m.load_core(cortex, 1, neurons, vec![0.0; n_cells], 0x8000)?;
    // Retina spikes are injected at chip (0,0) — the "optic nerve" entry
    // point — and routed east+north to the cortex chip. CAM overflow
    // propagates as a SpinnError instead of panicking.
    for (node, route) in [
        (
            NodeCoord::new(0, 0),
            RouteSet::EMPTY.with_link(spinnaker::noc::direction::Direction::NorthEast),
        ),
        (cortex, RouteSet::EMPTY.with_core(1)),
    ] {
        m.router_mut(node).table.insert(McTableEntry {
            key: 0x1000,
            mask: 0xFFFF_F000,
            route,
        })?;
    }
    for i in 0..n_cells as u32 {
        let row: SynapticRow = std::iter::once(SynapticWord::new(12000, 1, i as u16)).collect();
        m.set_row(cortex, 1, 0x1000 + i, row);
    }

    // 3. Stimulus: a bright blob. One rank-order salvo per "rhythm
    //    surge", 20 ms apart: earlier-ranked cells spike earlier within
    //    the salvo (1 ms per rank step, 4 ranks).
    let stimulus = Image::gaussian_blob(32, 32, 22.0, 9.0, 4.0);
    let code = retina.encode(&stimulus, 16);
    println!(
        "retina salvo: {} spikes, first cells {:?}",
        code.len(),
        &code.order[..4.min(code.len())]
    );
    for salvo in 0..5u64 {
        let t0 = 2 * MS + salvo * 20 * MS;
        for (rank, &cell) in code.order.iter().enumerate() {
            let t = t0 + (rank as u64 / 4) * MS;
            m.queue_stimulus(t, NodeCoord::new(0, 0), 0x1000 + cell);
        }
    }

    // 4. Run 120 ms of biological time.
    let m = m.run(120);

    // 5. Readout: which integrators fired, and where do they sit?
    let mut firing: Vec<u32> = m
        .spikes()
        .iter()
        .filter(|s| s.key & 0x8000 != 0)
        .map(|s| s.key - 0x8000)
        .collect();
    firing.sort_unstable();
    firing.dedup();
    println!("cortex: {} integrators fired over 5 salvos", firing.len());
    let (mut cx, mut cy) = (0.0f64, 0.0f64);
    for &i in &firing {
        cx += retina.cells()[i as usize].cx;
        cy += retina.cells()[i as usize].cy;
    }
    let n = firing.len().max(1) as f64;
    println!(
        "decoded stimulus position: ({:.1}, {:.1})   true: (22.0, 9.0)",
        cx / n,
        cy / n
    );
    println!(
        "fabric p99 latency {} ns; {} real-time violations",
        m.spike_latency().percentile(99.0),
        m.realtime_violations()
    );
    let err = ((cx / n - 22.0).powi(2) + (cy / n - 9.0).powi(2)).sqrt();
    assert!(err < 6.0, "decoded position off by {err:.1} px");
    assert_eq!(m.realtime_violations(), 0);
    Ok(())
}
